"""Persistence: serialise a VisionEmbedder (or sharded table) to a file.

The format is a single ``numpy`` ``.npz`` archive holding the fast space
(cell matrix), the slow space (parallel key/value arrays — cells are
recomputed from the seed on load), and a small metadata vector. No pickle
is involved, so the files are safe to load from untrusted sources and
stable across Python versions.

A :class:`~repro.core.sharded.ShardedEmbedder` round-trips through
:func:`save_sharded`/:func:`load_sharded`: an outer ``.npz`` holds the
sharded geometry plus one embedded per-shard payload in exactly the
single-table format above, so every shard's fast space is restored
byte-for-byte (including any seed bumps its reconstructions made).

Corrupt inputs — truncated archives, missing ``.npz`` members, malformed
or short metadata vectors — surface as
:class:`~repro.core.errors.CorruptSnapshotError`, a ``ValueError``
subclass carrying the offending ``source`` and ``field`` so operators
can tell a bad upload from a version skew at a glance.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Any, Dict, List, Union, cast

import numpy as np
import numpy.typing as npt

from repro.core.config import DepthPolicy, EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.errors import CorruptSnapshotError
from repro.core.sharded import ShardedEmbedder

_FORMAT_VERSION = 1
_SHARDED_FORMAT_VERSION = 1

PathOrFile = Union[str, "os.PathLike[str]", io.IOBase]

#: what ``np.load`` raises on a truncated, non-zip, or half-written file.
_OPEN_FAILURES = (zipfile.BadZipFile, OSError, EOFError, ValueError)


def _source_label(source: PathOrFile) -> str:
    """A human-readable name for the thing being loaded."""
    if isinstance(source, (str, os.PathLike)):
        return os.fspath(source)
    name = getattr(source, "name", "")
    if isinstance(name, str) and name:
        return name
    return f"<{type(source).__name__}>"


def _open_archive(source: PathOrFile, label: str) -> Any:
    try:
        return np.load(cast(Any, source))
    except _OPEN_FAILURES as exc:
        raise CorruptSnapshotError(
            f"cannot read snapshot archive: {exc}", source=label
        ) from exc


def _member(archive: Any, name: str, label: str) -> npt.NDArray[Any]:
    """One named array out of the archive, or a typed corruption error.

    ``KeyError`` means the member is absent; the zip/OS errors mean the
    member's compressed stream itself is truncated or unreadable.
    """
    try:
        member = archive[name]
    except (KeyError, IndexError, *_OPEN_FAILURES) as exc:
        raise CorruptSnapshotError(
            "snapshot archive is missing or cannot decode a member",
            source=label, field=name,
        ) from exc
    return np.asarray(member)


def _meta_int(
    meta: npt.NDArray[Any], index: int, field: str, label: str
) -> int:
    try:
        return int(meta[index])
    except (IndexError, TypeError, ValueError) as exc:
        raise CorruptSnapshotError(
            f"metadata vector is too short or malformed at slot {index}",
            source=label, field=field,
        ) from exc


def _meta_float(
    meta: npt.NDArray[Any], index: int, field: str, label: str
) -> float:
    try:
        return float(meta[index])
    except (IndexError, TypeError, ValueError) as exc:
        raise CorruptSnapshotError(
            f"metadata vector is too short or malformed at slot {index}",
            source=label, field=field,
        ) from exc


def save_embedder(table: VisionEmbedder, target: PathOrFile) -> None:
    """Write ``table`` (fast + slow space) to ``target``.

    ``target`` may be a path or a writable binary file object.
    """
    keys = np.fromiter(
        (key for key, _ in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    values = np.fromiter(
        (value for _, value in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    config = table.config
    meta = np.array(
        [
            _FORMAT_VERSION,
            table.capacity,
            table.value_bits,
            table.num_arrays,
            table.seed,
            config.max_repair_steps,
            config.max_search_attempts,
            config.max_reconstruct_attempts,
            1 if config.auto_reconstruct else 0,
            1 if config.strategy == "vision" else 0,
            1 if table.packed else 0,
        ],
        dtype=np.int64,
    )
    float_meta = np.array(
        [config.space_factor, config.reconstruct_efficiency_limit],
        dtype=np.float64,
    )
    dense = table._table.to_dense()
    np.savez(
        cast(Any, target),
        meta=meta,
        float_meta=float_meta,
        cells=dense,
        keys=keys,
        values=values,
    )


# repro: raises(CorruptSnapshotError, ValueError, TypeError)
def load_embedder(source: PathOrFile) -> VisionEmbedder:
    """Rebuild a VisionEmbedder written by :func:`save_embedder`.

    The fast space is restored byte-for-byte (no re-insertion, no repair
    walks); assistant-table cell sets are recomputed from the stored seed.
    Truncated or malformed inputs raise :class:`CorruptSnapshotError`.
    """
    label = _source_label(source)
    with _open_archive(source, label) as archive:
        meta = _member(archive, "meta", label)
        float_meta = _member(archive, "float_meta", label)
        cells = _member(archive, "cells", label)
        keys = _member(archive, "keys", label)
        values = _member(archive, "values", label)

    version = _meta_int(meta, 0, "meta.version", label)
    if version != _FORMAT_VERSION:
        raise CorruptSnapshotError(
            f"unsupported format version {version}",
            source=label, field="meta.version",
        )
    config = EmbedderConfig(
        space_factor=_meta_float(float_meta, 0, "float_meta.space_factor",
                                 label),
        strategy="vision" if _meta_int(meta, 9, "meta.strategy", label)
        else "simple",
        depth_policy=DepthPolicy(),
        max_repair_steps=_meta_int(meta, 5, "meta.max_repair_steps", label),
        max_search_attempts=_meta_int(meta, 6, "meta.max_search_attempts",
                                      label),
        reconstruct_efficiency_limit=_meta_float(
            float_meta, 1, "float_meta.reconstruct_efficiency_limit", label
        ),
        max_reconstruct_attempts=_meta_int(
            meta, 7, "meta.max_reconstruct_attempts", label
        ),
        auto_reconstruct=bool(_meta_int(meta, 8, "meta.auto_reconstruct",
                                        label)),
    )
    packed = bool(int(meta[10])) if len(meta) > 10 else False
    table = VisionEmbedder(
        capacity=_meta_int(meta, 1, "meta.capacity", label),
        value_bits=_meta_int(meta, 2, "meta.value_bits", label),
        config=config,
        seed=_meta_int(meta, 4, "meta.seed", label),
        num_arrays=_meta_int(meta, 3, "meta.num_arrays", label),
        packed=packed,
    )
    expected_shape = (table.num_arrays, table._table.width)
    if cells.shape != expected_shape:
        raise CorruptSnapshotError(
            "stored fast space does not match the reconstructed geometry "
            f"(got {cells.shape}, expected {expected_shape})",
            source=label, field="cells",
        )
    if keys.shape != values.shape:
        raise CorruptSnapshotError(
            "key and value arrays disagree in length "
            f"({keys.shape} vs {values.shape})",
            source=label, field="keys",
        )
    # The stored cells already satisfy every equation the assistant
    # re-derives below, so the verbatim restore cannot break the invariant.
    table._table.load_dense(cells.astype(np.uint64))  # repro: noqa[R101] -- persisted fast space restored verbatim
    # Recompute every key's cells in one vectorised pass and bulk-register.
    num_arrays = table.num_arrays
    key_array = keys.astype(np.uint64)
    index_cols = [
        arr.tolist() for arr in table._hashes.indices_batch(key_array)
    ]
    table._assistant.add_batch(
        key_array.tolist(),
        values.astype(np.uint64).tolist(),
        [
            tuple((j, index_cols[j][i]) for j in range(num_arrays))
            for i in range(len(keys))
        ],
    )
    return table


def save_sharded(table: ShardedEmbedder, target: PathOrFile) -> None:
    """Write a sharded table (router geometry + every shard) to ``target``.

    Each shard is serialised with :func:`save_embedder` into an embedded
    byte payload, so the per-shard format (and its guarantees) carry over
    unchanged; the outer metadata pins the shard count, master seed, and
    slack so the router reproduces the exact same partition on load.
    """
    meta = np.array(
        [
            _SHARDED_FORMAT_VERSION,
            table.num_shards,
            table.capacity,
            table.value_bits,
            table.num_arrays,
            1 if table.packed else 0,
            table.seed,
        ],
        dtype=np.int64,
    )
    float_meta = np.array([table.shard_slack], dtype=np.float64)
    payloads: Dict[str, npt.NDArray[np.uint8]] = {}
    for index, shard in enumerate(table.shards):
        buffer = io.BytesIO()
        save_embedder(shard, buffer)
        payloads[f"shard_{index}"] = np.frombuffer(
            buffer.getvalue(), dtype=np.uint8
        )
    np.savez(
        cast(Any, target),
        sharded_meta=meta,
        sharded_float_meta=float_meta,
        **payloads,
    )


# repro: raises(CorruptSnapshotError, ValueError, TypeError)
def load_sharded(source: PathOrFile) -> ShardedEmbedder:
    """Rebuild a :class:`ShardedEmbedder` written by :func:`save_sharded`.

    Every shard's fast space is restored byte-for-byte through
    :func:`load_embedder`; the shard router is rebuilt from the stored
    master seed, so each restored key routes to the shard it was saved in.
    Truncated or malformed inputs raise :class:`CorruptSnapshotError`.
    """
    label = _source_label(source)
    with _open_archive(source, label) as archive:
        meta = _member(archive, "sharded_meta", label)
        float_meta = _member(archive, "sharded_float_meta", label)
        version = _meta_int(meta, 0, "sharded_meta.version", label)
        if version != _SHARDED_FORMAT_VERSION:
            raise CorruptSnapshotError(
                f"unsupported sharded format version {version}",
                source=label, field="sharded_meta.version",
            )
        num_shards = _meta_int(meta, 1, "sharded_meta.num_shards", label)
        if num_shards <= 0:
            raise CorruptSnapshotError(
                f"shard count must be positive, got {num_shards}",
                source=label, field="sharded_meta.num_shards",
            )
        payloads: List[bytes] = []
        for index in range(num_shards):
            name = f"shard_{index}"
            payloads.append(_member(archive, name, label).tobytes())
    shards = [load_embedder(io.BytesIO(payload)) for payload in payloads]
    table = ShardedEmbedder(
        capacity=_meta_int(meta, 2, "sharded_meta.capacity", label),
        value_bits=_meta_int(meta, 3, "sharded_meta.value_bits", label),
        num_shards=num_shards,
        config=shards[0].config,
        seed=_meta_int(meta, 6, "sharded_meta.seed", label),
        shard_slack=_meta_float(float_meta, 0,
                                "sharded_float_meta.shard_slack", label),
        num_arrays=_meta_int(meta, 4, "sharded_meta.num_arrays", label),
        packed=bool(_meta_int(meta, 5, "sharded_meta.packed", label)),
    )
    table._shards = shards
    return table
