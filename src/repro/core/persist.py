"""Persistence: serialise a VisionEmbedder to a file and back.

The format is a single ``numpy`` ``.npz`` archive holding the fast space
(cell matrix), the slow space (parallel key/value arrays — cells are
recomputed from the seed on load), and a small metadata vector. No pickle
is involved, so the files are safe to load from untrusted sources and
stable across Python versions.
"""

from __future__ import annotations

import io
import os
from typing import Union

import numpy as np

from repro.core.config import DepthPolicy, EmbedderConfig
from repro.core.embedder import VisionEmbedder

_FORMAT_VERSION = 1

PathOrFile = Union[str, os.PathLike, io.IOBase]


def save_embedder(table: VisionEmbedder, target: PathOrFile) -> None:
    """Write ``table`` (fast + slow space) to ``target``.

    ``target`` may be a path or a writable binary file object.
    """
    keys = np.fromiter(
        (key for key, _ in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    values = np.fromiter(
        (value for _, value in table._assistant.pairs()),
        dtype=np.uint64,
        count=len(table),
    )
    config = table.config
    meta = np.array(
        [
            _FORMAT_VERSION,
            table.capacity,
            table.value_bits,
            table.num_arrays,
            table.seed,
            config.max_repair_steps,
            config.max_search_attempts,
            config.max_reconstruct_attempts,
            1 if config.auto_reconstruct else 0,
            1 if config.strategy == "vision" else 0,
            1 if table.packed else 0,
        ],
        dtype=np.int64,
    )
    float_meta = np.array(
        [config.space_factor, config.reconstruct_efficiency_limit],
        dtype=np.float64,
    )
    fast_space = table._table
    dense = (
        fast_space.to_dense() if hasattr(fast_space, "to_dense")
        else fast_space._cells
    )
    np.savez(
        target,
        meta=meta,
        float_meta=float_meta,
        cells=dense,
        keys=keys,
        values=values,
    )


def load_embedder(source: PathOrFile) -> VisionEmbedder:
    """Rebuild a VisionEmbedder written by :func:`save_embedder`.

    The fast space is restored byte-for-byte (no re-insertion, no repair
    walks); assistant-table cell sets are recomputed from the stored seed.
    """
    with np.load(source) as archive:
        meta = archive["meta"]
        float_meta = archive["float_meta"]
        cells = archive["cells"]
        keys = archive["keys"]
        values = archive["values"]

    version = int(meta[0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")
    config = EmbedderConfig(
        space_factor=float(float_meta[0]),
        strategy="vision" if int(meta[9]) else "simple",
        depth_policy=DepthPolicy(),
        max_repair_steps=int(meta[5]),
        max_search_attempts=int(meta[6]),
        reconstruct_efficiency_limit=float(float_meta[1]),
        max_reconstruct_attempts=int(meta[7]),
        auto_reconstruct=bool(int(meta[8])),
    )
    packed = bool(int(meta[10])) if len(meta) > 10 else False
    table = VisionEmbedder(
        capacity=int(meta[1]),
        value_bits=int(meta[2]),
        config=config,
        seed=int(meta[4]),
        num_arrays=int(meta[3]),
        packed=packed,
    )
    expected_shape = (table.num_arrays, table._table.width)
    if cells.shape != expected_shape:
        raise ValueError(
            "stored fast space does not match the reconstructed geometry"
        )
    # The stored cells already satisfy every equation the assistant
    # re-derives below, so the verbatim restore cannot break the invariant.
    table._table.load_dense(cells.astype(np.uint64))  # repro: noqa[R101] -- persisted fast space restored verbatim
    # Recompute every key's cells in one vectorised pass and bulk-register.
    num_arrays = table.num_arrays
    index_cols = [arr.tolist() for arr in table._hashes.indices_batch(keys)]
    table._assistant.add_batch(
        keys.tolist(),
        values.tolist(),
        [
            tuple((j, index_cols[j][i]) for j in range(num_arrays))
            for i in range(len(keys))
        ],
    )
    return table
