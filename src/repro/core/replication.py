"""Control-plane → data-plane replication of the fast space (§I, §VI-I).

On the paper's FPGA deployment, the CPU (control plane) runs the update
search over the assistant table and ships the result to the FPGA (data
plane) as *update messages*; the data plane only ever applies cell writes
and serves lookups. This module implements that split in software:

- :class:`UpdateMessage` — one cell XOR, the unit the paper's FPGA consumes
  (the deferred-path design means a whole repair is a list of these with a
  single shared delta).
- :class:`PublishingVisionEmbedder` — a VisionEmbedder that emits the
  message stream for every mutation, including full snapshots on
  reconstruction.
- :class:`DataPlaneReplica` — a lookup-only replica holding just the value
  table and hash seeds (no assistant table): exactly the fast-space state a
  switch ASIC / FPGA would hold. Applying the message stream keeps it
  bit-identical to the publisher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.core.value_table import ValueTable
from repro.hashing import HashFamily, key_to_u64
from repro.table import Key

Cell = Tuple[int, int]


@dataclass(frozen=True)
class UpdateMessage:
    """XOR ``delta`` into ``cell`` — the data-plane write primitive."""

    cell: Cell
    delta: int


@dataclass(frozen=True)
class SnapshotMessage:
    """Full fast-space state; sent after a reconstruction (new seeds)."""

    seed: int
    width: int
    value_bits: int
    num_arrays: int
    cells: bytes  # row-major uint64 little-endian

    @classmethod
    def of(cls, seed: int, table) -> "SnapshotMessage":
        if hasattr(table, "to_dense"):
            dense = table.to_dense()
        else:
            dense = table._cells
        return cls(
            seed=seed,
            width=table.width,
            value_bits=table.value_bits,
            num_arrays=table.num_arrays,
            cells=np.asarray(dense).astype("<u8").tobytes(),
        )


Message = Union[UpdateMessage, SnapshotMessage]


class PublishingVisionEmbedder(VisionEmbedder):
    """VisionEmbedder that streams its fast-space writes to subscribers.

    Subscribers receive every :class:`UpdateMessage` in apply order and a
    :class:`SnapshotMessage` whenever reconstruction replaced the whole
    table (reseeds change every cell, so a diff would be the whole table
    anyway).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._subscribers: List[Callable[[Message], None]] = []

    def subscribe(self, callback: Callable[[Message], None]) -> None:
        """Register a message consumer; immediately sends a snapshot."""
        self._subscribers.append(callback)
        callback(SnapshotMessage.of(self.seed, self._table))

    def _publish(self, message: Message) -> None:
        for callback in self._subscribers:
            callback(message)

    # -- hook the two mutation paths --------------------------------------

    def _run_update(self, handle: int) -> None:
        reconstructions_before = self._stats.reconstructions
        table_before = self._table  # cells mutate in place; compare counts
        super()._run_update(handle)
        if self._stats.reconstructions != reconstructions_before:
            # Reconstruction rewired everything: ship a snapshot.
            self._publish(SnapshotMessage.of(self.seed, self._table))

    def reconstruct(self, method: str = "dynamic") -> None:
        super().reconstruct(method)
        self._publish(SnapshotMessage.of(self.seed, self._table))

    def bulk_load(self, pairs) -> None:
        super().bulk_load(pairs)
        self._publish(SnapshotMessage.of(self.seed, self._table))

    # The deferred plan application is the single choke point for
    # incremental writes; intercept it by wrapping the plan.

    def insert(self, key: Key, value: int) -> None:
        with self._capture_writes():
            super().insert(key, value)

    def insert_batch(self, keys, values) -> None:
        # insert_many funnels through here, so batched writes stream the
        # same per-cell messages sequential inserts would.
        with self._capture_writes():
            super().insert_batch(keys, values)

    def update(self, key: Key, value: int) -> None:
        with self._capture_writes():
            super().update(key, value)

    def _capture_writes(self):
        """Context manager publishing every cell XOR the operation applies."""
        publisher = self

        class _Capture:
            def __enter__(self):
                publisher._original_xor = publisher._table.xor

                def publishing_xor(cell, delta, _orig=publisher._original_xor):
                    _orig(cell, delta)
                    publisher._publish(
                        UpdateMessage(cell=cell, delta=int(delta))
                    )

                publisher._table.xor = publishing_xor
                return self

            def __exit__(self, *exc):
                # Remove the instance attribute so the class method shows
                # through again.
                del publisher._table.xor
                del publisher._original_xor
                return False

        return _Capture()


class DataPlaneReplica:
    """A lookup-only fast-space replica (what an FPGA/ASIC would hold)."""

    def __init__(self):
        self._table: Optional[ValueTable] = None
        self._hashes: Optional[HashFamily] = None
        self.messages_applied = 0
        self.snapshots_applied = 0

    @property
    def ready(self) -> bool:
        """True once a snapshot has been received."""
        return self._table is not None

    def apply(self, message: Message) -> None:
        """Consume one control-plane message."""
        if isinstance(message, SnapshotMessage):
            table = ValueTable(
                message.width, message.value_bits, message.num_arrays
            )
            dense = np.frombuffer(
                message.cells, dtype="<u8"
            ).reshape(message.num_arrays, message.width)
            table.load_dense(dense)  # repro: noqa[R101] -- replica restores the publisher's snapshot verbatim
            self._table = table
            self._hashes = HashFamily(
                message.seed, [message.width] * message.num_arrays
            )
            self.snapshots_applied += 1
        elif isinstance(message, UpdateMessage):
            if self._table is None:
                raise RuntimeError("replica has no snapshot yet")
            self._table.xor(message.cell, message.delta)  # repro: noqa[R101] -- data plane applies publisher-authored V_delta
            self.messages_applied += 1
        else:
            raise TypeError(f"unknown message type {type(message).__name__}")

    def lookup(self, key: Key) -> int:
        """Fast-space lookup, identical to the publisher's."""
        if self._table is None or self._hashes is None:
            raise RuntimeError("replica has no snapshot yet")
        handle = key_to_u64(key)
        cells = tuple(enumerate(self._hashes.indices(handle)))
        return self._table.xor_sum(cells)

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised fast-space lookup."""
        if self._table is None or self._hashes is None:
            raise RuntimeError("replica has no snapshot yet")
        index_arrays = self._hashes.indices_batch(
            np.asarray(keys, dtype=np.uint64)
        )
        return self._table.lookup_batch(index_arrays)

    def state_equals(self, embedder: VisionEmbedder) -> bool:
        """Bit-exact comparison with a publisher's fast space (tests)."""
        if self._table is None:
            return False
        theirs = embedder._table
        if hasattr(theirs, "to_dense"):
            # Packed publisher: compare against its dense projection.
            return bool(np.array_equal(self._table._cells, theirs.to_dense()))
        return self._table == theirs
