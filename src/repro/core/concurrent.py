"""Thread-safe VisionEmbedder (§IV-B "Concurrency").

The paper's design splits an update into two parts — part 1 write-locks the
key's three "units" (cell + assistant entries) and computes the fixed XOR
increment ``V_delta``; part 2 finds the modification path ``S_delta`` under
read locks and applies ``V_delta`` to each cell with an atomic XOR. Lookups
never lock: they read the value table directly, so a concurrent
path-application may be observed partially (the paper's data plane behaves
the same way).

This Python port keeps the same structure and visibility semantics but
adapts the locking to CPython:

- Mutations (insert / update / delete / reconstruct) are serialised by one
  update mutex. Under the GIL, fine-grained per-unit writer locks cannot
  run update work in parallel anyway, and per-cell "atomic XOR" does not
  exist for numpy scalars — a read-modify-write races. Serialising writers
  is the honest equivalent that preserves correctness.
- Lookups take no lock in the steady state, exactly like the paper's data
  plane. Only reconstruction — which rebuilds the whole table in place —
  excludes them, via a readers-writer gate (:class:`RWLock`, the library's
  SharedMutex equivalent).

Fig 13's multi-threaded *lookup* scaling is reproduced through
``lookup_batch``, whose numpy kernels release the GIL; multi-threaded
*update* scaling cannot materialise in pure CPython and EXPERIMENTS.md
reports that divergence.
"""

from __future__ import annotations

import threading
from typing import Any, ContextManager, Iterable, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder
from repro.obs.hooks import WalkHooks
from repro.table import Key


class RWLock:
    """A writer-preferring readers-writer lock (SharedMutex equivalent)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _ReadContext:
        def __init__(self, lock: "RWLock") -> None:
            self._lock = lock

        def __enter__(self) -> "RWLock._ReadContext":
            self._lock.acquire_read()
            return self

        def __exit__(self, *exc: object) -> bool:
            self._lock.release_read()
            return False

    class _WriteContext:
        def __init__(self, lock: "RWLock") -> None:
            self._lock = lock

        def __enter__(self) -> "RWLock._WriteContext":
            self._lock.acquire_write()
            return self

        def __exit__(self, *exc: object) -> bool:
            self._lock.release_write()
            return False

    def read(self) -> "_ReadContext":
        """Context manager acquiring the lock in shared mode."""
        return RWLock._ReadContext(self)

    def write(self) -> "_WriteContext":
        """Context manager acquiring the lock in exclusive mode."""
        return RWLock._WriteContext(self)


class ConcurrentVisionEmbedder(VisionEmbedder):
    """VisionEmbedder safe for concurrent lookups and updates.

    Lookups are lock-free except against reconstruction; all mutations are
    serialised. See the module docstring for how this maps onto the paper's
    per-unit locking.
    """

    name = "vision-mt"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        config: Optional[EmbedderConfig] = None,
        seed: int = 1,
        num_arrays: int = 3,
        packed: bool = False,
        hooks: Optional[WalkHooks] = None,
    ) -> None:
        super().__init__(capacity, value_bits, config=config, seed=seed,
                         num_arrays=num_arrays, packed=packed, hooks=hooks)
        # Reentrant: insert/update may trigger reconstruct() internally.
        # Annotated as a plain context manager so the instrumentation seam
        # below can swap in traced/cooperative doubles.
        self._update_mutex: ContextManager[Any] = threading.RLock()
        self._rebuild_gate: RWLock = RWLock()

    def instrument_sync(
        self,
        mutex: Optional[Any] = None,
        gate: Optional[RWLock] = None,
        table: Optional[Any] = None,
    ) -> None:
        """Swap sync primitives / the value table for instrumented doubles.

        The seam the ``repro.check`` concurrency tooling plugs into: the
        vector-clock race detector wraps all three
        (:func:`repro.check.vectorclock.instrument_concurrent`) and the
        schedule explorer substitutes cooperative locks and a yielding
        table. ``mutex`` must be a reentrant context manager, ``gate`` an
        :class:`RWLock` (usually a subclass), ``table`` a drop-in for the
        value-table surface. Call while the structure is quiescent —
        before any worker threads are started — or the swap itself races.
        """
        if mutex is not None:
            self._update_mutex = mutex
        if gate is not None:
            self._rebuild_gate = gate
        if table is not None:
            self._table = table

    def set_hooks(self, hooks: Optional[WalkHooks]) -> None:
        # Serialised against mutations so a walk never sees the hooks (or
        # the strategy's subtree histogram) change mid-flight. Hook events
        # themselves fire under the update mutex — one writer at a time —
        # so MetricsHooks/TableStats counters stay exact; scrapers on
        # other threads go through the registry's locked methods.
        if not hasattr(self, "_update_mutex"):  # during __init__
            super().set_hooks(hooks)
            return
        with self._update_mutex:
            super().set_hooks(hooks)

    # -- mutations: serialised -----------------------------------------

    def insert(self, key: Key, value: int) -> None:
        with self._update_mutex:
            super().insert(key, value)

    def update(self, key: Key, value: int) -> None:
        with self._update_mutex:
            super().update(key, value)

    def insert_batch(
        self, keys: Iterable[Key], values: Iterable[int]
    ) -> None:
        # One lock for the whole batch: the repair walks inside must not
        # interleave with other writers (insert_many funnels through here).
        with self._update_mutex:
            super().insert_batch(keys, values)

    def delete(self, key: Key) -> None:
        with self._update_mutex:
            super().delete(key)

    def reconstruct(self, method: str = "dynamic") -> None:
        # Reconstruction rewrites the whole fast space: serialise against
        # other mutations (reentrant when reached from insert/update) and
        # exclude in-flight readers via the gate.
        with self._update_mutex:
            with self._rebuild_gate.write():
                super().reconstruct(method)

    def bulk_load(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        # Static construction rewrites the whole fast space too.
        with self._update_mutex:
            with self._rebuild_gate.write():
                super().bulk_load(pairs)

    # -- lookups: lock-free against updates, gated against rebuilds ----

    def lookup(self, key: Key) -> int:
        with self._rebuild_gate.read():
            return super().lookup(key)

    def lookup_batch(
        self, keys: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.uint64]:
        with self._rebuild_gate.read():
            return super().lookup_batch(keys)
