"""Bit-packed value table: the title's "bit-level-compact" storage, for real.

:class:`~repro.core.value_table.ValueTable` stores each L-bit cell in a
64-bit word for speed; its *space accounting* is bit-level but its memory
is not. :class:`PackedValueTable` is a drop-in alternative that packs the
cells end-to-end into a word array, so a table of m cells of L bits
actually occupies ⌈m·L/64⌉ machine words — e.g. 1-bit values consume 64×
less RAM. This is what an SRAM/BRAM deployment stores, and it lets the
Python library hold paper-scale tables (4M 1-bit pairs ≈ 0.85 MB).

Cells may straddle a word boundary; reads assemble from at most two words,
writes read-modify-write the same. The batch-lookup path is fully
vectorised, including the straddle handling.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

Cell = Tuple[int, int]

_WORD_BITS = 64


class PackedValueTable:
    """Three arrays of L-bit integers, bit-packed into 64-bit words."""

    def __init__(self, width: int, value_bits: int, num_arrays: int = 3):
        if width <= 0:
            raise ValueError("width must be positive")
        if not 1 <= value_bits <= 64:
            raise ValueError("value_bits must be in [1, 64]")
        if num_arrays < 2:
            raise ValueError("need at least two arrays")
        self.width = width
        self.value_bits = value_bits
        self.num_arrays = num_arrays
        self.value_mask = (1 << value_bits) - 1
        total_bits = self.num_cells * value_bits
        # +1 pad word lets the straddle path read word w+1 unconditionally.
        num_words = (total_bits + _WORD_BITS - 1) // _WORD_BITS + 1
        self._words = np.zeros(num_words, dtype=np.uint64)

    # -- geometry ---------------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Total number of cells m = num_arrays · width."""
        return self.num_arrays * self.width

    @property
    def space_bits(self) -> int:
        """Fast-space footprint in bits: one L-bit integer per cell."""
        return self.num_cells * self.value_bits

    @property
    def backing_bytes(self) -> int:
        """Actual RAM held by the packed backing store."""
        return self._words.nbytes

    def _flat(self, cell: Cell) -> int:
        j, t = cell
        return j * self.width + t

    # -- scalar access ------------------------------------------------------

    def get(self, cell: Cell) -> int:  # repro: hotpath
        """Read the L-bit integer at ``cell = (array, index)``."""
        bit = self._flat(cell) * self.value_bits
        word, offset = divmod(bit, _WORD_BITS)
        value = int(self._words[word]) >> offset
        spill = offset + self.value_bits - _WORD_BITS
        if spill > 0:
            value |= int(self._words[word + 1]) << (self.value_bits - spill)
        return value & self.value_mask

    def set(self, cell: Cell, value: int) -> None:
        """Overwrite the integer at ``cell`` with ``value``."""
        self.xor(cell, (self.get(cell) ^ value) & self.value_mask)

    def xor(self, cell: Cell, delta: int) -> None:  # repro: hotpath
        """XOR ``delta`` into the integer at ``cell``.

        XOR never carries across bits, so a straddling write is two
        independent word XORs — no read-modify-write of neighbours.
        """
        delta &= self.value_mask
        bit = self._flat(cell) * self.value_bits
        word, offset = divmod(bit, _WORD_BITS)
        self._words[word] ^= np.uint64((delta << offset) & 0xFFFFFFFFFFFFFFFF)
        spill = offset + self.value_bits - _WORD_BITS
        if spill > 0:
            self._words[word + 1] ^= np.uint64(delta >> (self.value_bits - spill))

    def xor_sum(self, cells: Iterable[Cell]) -> int:  # repro: hotpath
        """XOR of the integers at the given cells (the lookup primitive)."""
        result = 0
        for cell in cells:
            result ^= self.get(cell)
        return result

    # -- batch access -------------------------------------------------------

    def _gather(self, flat: np.ndarray) -> np.ndarray:
        """Vectorised read of the cells at flat indices ``flat``."""
        bits = flat.astype(np.uint64) * np.uint64(self.value_bits)
        words = (bits >> np.uint64(6)).astype(np.int64)
        offsets = bits & np.uint64(63)
        low = self._words[words] >> offsets
        # Bits available in the first word; straddlers take the rest from
        # the next word. Shift counts stay in [0, 63] to avoid UB.
        take = np.uint64(_WORD_BITS) - offsets
        need_spill = take < np.uint64(self.value_bits)
        shift = take & np.uint64(63)
        high = np.where(
            need_spill, self._words[words + 1] << shift, np.uint64(0)
        )
        return (low | high) & np.uint64(self.value_mask)

    def lookup_batch(self, index_arrays: Sequence[np.ndarray]) -> np.ndarray:  # repro: hotpath
        """Vectorised lookup: XOR across arrays at per-array index vectors."""
        if len(index_arrays) != self.num_arrays:
            raise ValueError("need one index vector per array")
        result = None
        for j in range(self.num_arrays):
            flat = np.asarray(index_arrays[j], dtype=np.uint64) + np.uint64(
                j * self.width
            )
            values = self._gather(flat)
            result = values if result is None else result ^ values
        return result

    def gather_xor(self, flat_mat: np.ndarray) -> np.ndarray:  # repro: hotpath
        """Fused batch lookup over a ``(num_arrays, k)`` flat-id matrix.

        :meth:`_gather` is shape-agnostic, so one call unpacks every cell
        and a single XOR-reduce collapses the array axis.
        """
        return np.bitwise_xor.reduce(
            self._gather(np.asarray(flat_mat).astype(np.uint64)), axis=0
        )

    def xor_batch(
        self, flat_cells: np.ndarray, deltas: np.ndarray
    ) -> None:  # repro: hotpath
        """Vectorised :meth:`xor` at flat cell ids.

        XOR never carries across bits, so each write is one low-word XOR
        plus, for cells straddling a word boundary, one spill-word XOR.
        ``np.bitwise_xor.at`` accumulates same-word collisions exactly like
        sequential scalar XORs would.
        """
        deltas = np.asarray(deltas, dtype=np.uint64) & np.uint64(self.value_mask)
        bits = np.asarray(flat_cells).astype(np.uint64) * np.uint64(
            self.value_bits
        )
        words = (bits >> np.uint64(6)).astype(np.int64)
        offsets = bits & np.uint64(63)
        np.bitwise_xor.at(self._words, words, deltas << offsets)
        spill = offsets + np.uint64(self.value_bits) > np.uint64(_WORD_BITS)
        if bool(spill.any()):
            # Straddlers have offset >= 1 (value_bits <= 64), so the right
            # shift count stays within [1, 63].
            shift = np.uint64(_WORD_BITS) - offsets[spill]
            np.bitwise_xor.at(
                self._words, words[spill] + 1, deltas[spill] >> shift
            )

    # -- lifecycle ----------------------------------------------------------

    def clear(self) -> None:
        """Zero every cell (used by reconstruction)."""
        self._words.fill(0)

    def copy(self) -> "PackedValueTable":
        """An independent deep copy."""
        clone = PackedValueTable(self.width, self.value_bits, self.num_arrays)
        clone._words = self._words.copy()
        return clone

    def to_dense(self) -> np.ndarray:
        """The cell matrix as (num_arrays, width) uint64 (persistence)."""
        flat = np.arange(self.num_cells, dtype=np.uint64)
        return self._gather(flat).reshape(self.num_arrays, self.width)

    def load_dense(self, cells: np.ndarray) -> None:
        """Restore from a dense cell matrix (persistence, bulk writes).

        The backing words start zeroed, so one vectorised
        :meth:`xor_batch` over every flat cell id *is* the packing — the
        same word arithmetic as the batched read path, run in reverse.
        """
        if cells.shape != (self.num_arrays, self.width):
            raise ValueError("dense matrix shape mismatch")
        self.clear()
        self.xor_batch(
            np.arange(self.num_cells, dtype=np.int64),
            np.asarray(cells, dtype=np.uint64).reshape(-1),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedValueTable):
            return (
                self.width == other.width
                and self.value_bits == other.value_bits
                and self.num_arrays == other.num_arrays
                and bool(np.array_equal(self._words, other._words))
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedValueTable(width={self.width}, "
            f"value_bits={self.value_bits}, num_arrays={self.num_arrays}, "
            f"backing_bytes={self.backing_bytes})"
        )
