"""Update algorithms of VisionEmbedder (§IV).

Two decision strategies are provided:

- :class:`SimpleStrategy` (§IV-A): pick the cell to modify uniformly at
  random, in the spirit of cuckoo hashing's random kick.
- :class:`VisionStrategy` (§IV-B): estimate, with a depth-bounded DFS
  (``GetCost``), how many cells each candidate choice would ultimately force
  us to rewrite, and pick the cheapest. The lookahead depth follows the
  paper's dynamic schedule (1 → 2 → 3 as the table fills).

Two execution modes implement the repair itself:

- :func:`find_update_path` — the *deferred* mode from the paper's
  concurrency section: the search records the set of cells to modify
  (``S_delta``); every cell on the path is then XORed by one fixed increment
  ``V_delta``. A failed search leaves the value table untouched.
- :func:`eager_update` — the same walk but rewriting cells as it goes, as
  Algorithm 1/2 is written. It exists as an executable specification; a
  property test asserts the two modes produce identical tables.

:func:`search_update_path` layers the paper's "search backtrack feature"
(§IV-B Concurrency) on top: because a failed deferred search leaves no
trace, a stuck walk is simply retried with randomised tie-breaking and an
ε-greedy exploration term plus a larger step budget. Near the occupancy
where the one-step branching factor crosses 1 (Theorem 1's λ' = 1.709,
which the default 1.7L budget slightly exceeds when full), the greedy walk
occasionally cycles even though a repair path exists; a handful of
randomised retries finds one, cutting measured update failures by an order
of magnitude and leaving reconstruction for the genuinely unsolvable
O(1/n) collision events.

Both walks are iterative (explicit work stack), so deep repair chains near
full occupancy cannot overflow the Python recursion limit.
"""

from __future__ import annotations

import random
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.core.assistant_table import AssistantTable
from repro.core.config import DepthPolicy
from repro.core.errors import UpdateFailure
from repro.core.stats import TableStats
from repro.core.value_table import ValueTable

Cell = Tuple[int, int]


class UpdateStrategy(ABC):
    """Decision function: which of a key's cells should be modified."""

    @abstractmethod
    def choose(
        self,
        candidates: List[Cell],
        from_key: int,
        assistant: AssistantTable,
        space_efficiency: float,
    ) -> Cell:
        """Pick one cell from ``candidates`` to modify for ``from_key``."""

    def retry_variant(self, attempt: int, rng: random.Random) -> "UpdateStrategy":
        """The strategy to use on the ``attempt``-th retry (default: self)."""
        return self


class SimpleStrategy(UpdateStrategy):
    """§IV-A: choose uniformly at random (cuckoo-style random kick)."""

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng if rng is not None else random.Random(0)

    def choose(
        self,
        candidates: List[Cell],
        from_key: int,
        assistant: AssistantTable,
        space_efficiency: float,
    ) -> Cell:
        return self._rng.choice(candidates)


class _CostCache:
    """Shared memo store for :class:`VisionStrategy` (and its retry twins).

    ``entries`` maps ``(key, excluded_flat_cell, remaining_depth)`` to
    ``(cost, dep_cells, dep_gens)``: the memoised subtree cost, the flat
    ids (``array * width + index``) of every bucket the subtree read, and
    the generation each of those buckets had at computation time. An entry
    is trusted only while every dependent bucket's generation counter is
    unchanged; the owner check (weakref + ``generation_epoch``) discards
    everything when the assistant is swapped or cleared.
    """

    __slots__ = ("entries", "owner", "epoch")

    # Hard bound on memo entries; the cache is cleared wholesale beyond it
    # (entries are invalidated by writes anyway, so this only limits RAM).
    MAX_ENTRIES = 1 << 20

    def __init__(self) -> None:
        self.entries: dict = {}
        self.owner: Optional[weakref.ref] = None
        self.epoch = -1


class VisionStrategy(UpdateStrategy):
    """§IV-B: pick the candidate with the lowest GetCost estimate.

    ``GetCost(cell)`` is 1 (for the cell itself) plus, for every other
    equation touching the cell, the cheaper of recursively modifying one of
    that equation's two remaining cells. At the depth limit the estimate
    falls back to the bucket counter ``C_j[t]``; with ``MaxDepth = 1`` the
    strategy therefore degenerates to the basic
    "modify the cell with the fewest equations" rule the paper describes.

    ``rng``/``epsilon`` add the retry randomisation: ties break randomly,
    and with probability ε the walk explores a uniformly random candidate
    instead of the cheapest.

    When the observability layer is enabled
    (:meth:`VisionEmbedder.set_hooks`), ``subtree_histogram`` receives the
    number of buckets each recomputed subtree read — the GetCost-cost
    distribution of §IV-C. It stays ``None`` (and costs one attribute test
    per miss) otherwise.

    With ``use_cache=True`` (the default) each bucket member's subtree
    ``T(k, cell, r) = min_{c ∈ cells(k)∖{cell}} E(c, k, r−1)`` is memoised
    per ``(key, excluded-cell, remaining-depth)`` — the unit every walk
    re-evaluates when it looks at a bucket. Entries carry the generation
    counters of every bucket their DFS read, which
    ``AssistantTable.add``/``remove`` bump per touched bucket — so walks
    over stable regions revalidate in a few integer compares instead of
    re-running the subtree. Cache traffic is reported through ``stats``
    (``cost_cache_hits``/``cost_cache_misses``/
    ``cost_cache_invalidations``) when one is attached.
    """

    def __init__(
        self,
        depth_policy: Optional[DepthPolicy] = None,
        rng: Optional[random.Random] = None,
        epsilon: float = 0.0,
        use_cache: bool = True,
        stats: Optional[TableStats] = None,
        shortcut: bool = True,
    ):
        self.depth_policy = depth_policy if depth_policy is not None else DepthPolicy()
        self._rng = rng
        self.epsilon = epsilon
        self.use_cache = use_cache
        # ``shortcut`` skips the DFS when a candidate bucket holds only the
        # repaired key (provably minimal cost); disable together with
        # ``use_cache`` to time the unoptimised reference write path.
        self.shortcut = shortcut
        self._stats = stats
        # Hot-path counter objects held directly: bumping
        # ``counter.value`` costs what the old dataclass field did, and
        # the registry export still sees every increment.
        self._hits = (
            stats.counter_for("cost_cache_hits") if stats is not None
            else None
        )
        self._misses = (
            stats.counter_for("cost_cache_misses") if stats is not None
            else None
        )
        self._invalidations = (
            stats.counter_for("cost_cache_invalidations")
            if stats is not None else None
        )
        self.subtree_histogram = None
        self._cache = _CostCache()

    def choose(  # repro: hotpath
        self,
        candidates: List[Cell],
        from_key: int,
        assistant: AssistantTable,
        space_efficiency: float,
    ) -> Cell:
        if self._rng is not None and self.epsilon:
            if self._rng.random() < self.epsilon:
                return self._rng.choice(candidates)
        if self._rng is None and self.shortcut:
            # Provably-minimal shortcut: a candidate whose bucket holds no
            # key but ``from_key`` has GetCost exactly 1 (every other cost
            # is ≥ 2 at depth ≥ 2 and ≥ its counter at depth 1), and the
            # deterministic tie-break keeps the first minimum — so the DFS
            # can be skipped entirely. Randomised retry twins keep the full
            # evaluation, which consumes their rng stream tie by tie.
            for cell in candidates:
                if assistant.count_at(cell) <= 1:
                    return cell
        max_depth = self.depth_policy.depth_for(space_efficiency)
        if self.use_cache:
            self._sync_cache(assistant)
            remaining = max_depth - 1
            width = assistant.width

            def evaluate(cell: Cell) -> int:
                return self._cost_excluding(cell[0] * width + cell[1],
                                            from_key, remaining, assistant,
                                            None)
        else:

            def evaluate(cell: Cell) -> int:
                return self._get_cost(cell, from_key, 1, max_depth, assistant)

        if self._rng is None and self.shortcut:
            # Every candidate bucket holds ≥ 2 keys here (the shortcut
            # above returned otherwise), so every cost is ≥ 2: the first
            # candidate that evaluates to 2 is the exact first-wins argmin
            # and the remaining candidates need not be evaluated.
            best_cell = candidates[0]
            best_cost = evaluate(best_cell)
            for cell in candidates[1:]:
                if best_cost == 2:
                    return best_cell
                cost = evaluate(cell)
                if cost < best_cost:
                    best_cost = cost
                    best_cell = cell
            return best_cell

        costs = [evaluate(cell) for cell in candidates]
        best_cell = candidates[0]
        best_cost = costs[0]
        for cell, cost in zip(candidates[1:], costs[1:]):
            if cost < best_cost or (
                cost == best_cost
                and self._rng is not None
                and self._rng.random() < 0.5
            ):
                best_cost = cost
                best_cell = cell
        return best_cell

    # -- uncached reference recursion (also used when use_cache=False) ----

    def _get_cost(
        self,
        cell: Cell,
        from_key: int,
        depth: int,
        max_depth: int,
        assistant: AssistantTable,
    ) -> int:
        if depth >= max_depth:
            return assistant.count_at(cell)
        cost = 1
        for key in assistant.keys_at(cell):
            if key == from_key:
                continue
            options = [c for c in assistant.cells(key) if c != cell]
            cost += min(
                self._get_cost(option, key, depth + 1, max_depth, assistant)
                for option in options
            )
        return cost

    # -- memoised recursion ------------------------------------------------

    def _sync_cache(self, assistant: AssistantTable) -> None:
        """Reset the memo store if it belongs to another/cleared assistant."""
        cache = self._cache
        owner = cache.owner() if cache.owner is not None else None
        if owner is not assistant or cache.epoch != assistant.generation_epoch:
            cache.entries.clear()
            cache.owner = weakref.ref(assistant)
            cache.epoch = assistant.generation_epoch
        elif len(cache.entries) > _CostCache.MAX_ENTRIES:
            cache.entries.clear()

    def _cost_excluding(  # repro: hotpath
        self,
        flat_cell: int,
        from_key: int,
        remaining: int,
        assistant: AssistantTable,
        out_deps: Optional[List[int]],
    ) -> int:
        """E(cell, from_key, remaining): the paper's GetCost.

        Identical recursion to :meth:`_get_cost`, but cells are flat bucket
        ids (``array * width + index``) and each bucket member's
        min-over-options subtree goes through the :meth:`_key_term` memo.
        """
        if out_deps is not None:
            out_deps.append(flat_cell)
        bucket = assistant._buckets[flat_cell]
        if remaining <= 0:
            return len(bucket)
        cost = 1
        key_term = self._key_term
        for key in bucket:
            if key != from_key:
                cost += key_term(key, flat_cell, remaining, assistant,
                                 out_deps)
        return cost

    def _key_term(  # repro: hotpath
        self,
        key: int,
        flat_cell: int,
        remaining: int,
        assistant: AssistantTable,
        out_deps: Optional[List[int]],
    ) -> int:
        """Memoised ``min_{c ∈ cells(key)∖{cell}} E(c, key, remaining−1)``.

        This is the unit of reuse: the same (key, excluded-cell) subtree is
        re-evaluated every time any walk looks at the key's bucket. Entries
        carry the flat ids and generations of every bucket their subtree
        read and are trusted only while every generation still matches.
        """
        if remaining < 2:
            # A depth-1 subtree is the min of two bucket lengths — cheaper
            # to recompute than any memo lookup, validation, or store.
            width = assistant.width
            buckets = assistant._buckets
            cost = -1
            for j, t in assistant._cells[key]:
                option = j * width + t
                if option != flat_cell:
                    if out_deps is not None:
                        out_deps.append(option)
                    term = len(buckets[option])
                    if cost < 0 or term < cost:
                        cost = term
            return cost
        entries = self._cache.entries
        memo_key = (key, flat_cell, remaining)
        entry = entries.get(memo_key)
        if entry is not None:
            gens = assistant._gens
            dep_cells = entry[1]
            for flat, gen in zip(dep_cells, entry[2]):
                if gens[flat] != gen:
                    if self._invalidations is not None:
                        self._invalidations.value += 1
                    break
            else:
                if self._hits is not None:
                    self._hits.value += 1
                if out_deps is not None:
                    out_deps.extend(dep_cells)
                return entry[0]
        if self._misses is not None:
            self._misses.value += 1
        deps: List[int] = []
        width = assistant.width
        cost = -1
        for j, t in assistant._cells[key]:
            option = j * width + t
            if option != flat_cell:
                term = self._cost_excluding(option, key, remaining - 1,
                                            assistant, deps)
                if cost < 0 or term < cost:
                    cost = term
        gens = assistant._gens
        dep_cells = tuple(set(deps))
        entries[memo_key] = (
            cost, dep_cells, tuple([gens[flat] for flat in dep_cells])
        )
        if self.subtree_histogram is not None:
            self.subtree_histogram.observe(len(dep_cells))
        if out_deps is not None:
            out_deps.extend(deps)
        return cost

    def retry_variant(self, attempt: int, rng: random.Random) -> "VisionStrategy":
        """Randomised twin for retry ``attempt`` (ε grows with attempts).

        The twin shares this strategy's cost-cache and stats sink, so
        retries keep benefiting from (and warming) the same memo store.
        """
        twin = VisionStrategy(
            self.depth_policy,
            rng=rng,
            epsilon=min(0.5, 0.1 + 0.05 * attempt),
            use_cache=self.use_cache,
            stats=self._stats,
        )
        twin._cache = self._cache
        twin.subtree_histogram = self.subtree_histogram
        return twin


@dataclass
class UpdatePlan:
    """Outcome of a deferred-path search.

    ``path`` is S_delta: the cells to XOR by ``v_delta``; ``steps`` is the
    number of repair iterations the search took, across retries (the
    amortised-cost metric).
    """

    path: Set[Cell]
    v_delta: int
    steps: int

    # repro: atomic
    def apply(self, table: ValueTable) -> None:
        """XOR ``v_delta`` into every cell on the path — all or nothing.

        XOR is self-inverse, so an exception mid-loop (a fault injected
        between cells) is undone by re-XORing the already-applied prefix
        before re-raising: the table is never left partially applied.
        """
        applied: List[Cell] = []
        try:
            for cell in self.path:
                table.xor(cell, self.v_delta)
                applied.append(cell)
        except BaseException:
            for cell in applied:
                table.xor(cell, self.v_delta)
            raise


def _run_repair_walk(  # repro: hotpath
    check_consistent: Callable[[int], bool],
    modify: Callable[[Cell], None],
    assistant: AssistantTable,
    key: int,
    strategy: UpdateStrategy,
    space_efficiency: float,
    max_steps: int,
    hooks=None,
) -> int:
    """The shared repair loop of both execution modes.

    Pops (key, pinned-cell) work items; a popped key whose equation already
    holds is dropped, otherwise one of its non-pinned cells is chosen by
    the strategy and modified, re-queueing every other key on that cell.
    Raises :class:`UpdateFailure` when ``max_steps`` items have been
    processed without quiescing.

    ``hooks`` (a :class:`repro.obs.hooks.WalkHooks`-shaped object or None)
    receives ``on_kick(current, cell, stack_depth)`` after every
    modification; when None — the default — tracing costs one identity
    test per kick and nothing else.

    The walk never trusts the assistant's *live* bucket sets across its own
    re-queues: ``keys_at`` is snapshotted before iterating, and a queued key
    that has since been removed from the table (a strategy callback or a
    re-entrant delete can do that) is skipped instead of crashing on its
    missing bookkeeping.
    """
    steps = 0
    stack: List[Tuple[int, Optional[Cell]]] = [(key, None)]
    while stack:
        current, fixed_cell = stack.pop()
        steps += 1
        if steps > max_steps:
            raise UpdateFailure(steps=steps)
        if current not in assistant:
            continue
        if check_consistent(current):
            continue
        cells = assistant.cells(current)
        candidates = [c for c in cells if c != fixed_cell]
        choice = strategy.choose(candidates, current, assistant,
                                 space_efficiency)
        modify(choice)
        # Sorted snapshot: set iteration order is an implementation detail
        # of the assistant (hash-set vs array-backed buckets), and the
        # re-queue order steers every later pop. Sorting pins the walk to
        # the key values alone, so scalar and vector backends replay
        # bit-identical walks over identical table states.
        for neighbour in sorted(assistant.keys_at(choice)):
            if neighbour != current:
                stack.append((neighbour, choice))
        if hooks is not None:
            hooks.on_kick(current, choice, len(stack))
    return steps


def find_update_path(  # repro: hotpath
    table: ValueTable,
    assistant: AssistantTable,
    key: int,
    strategy: UpdateStrategy,
    space_efficiency: float,
    max_steps: int,
    hooks=None,
    attempt: int = 0,
) -> UpdatePlan:
    """Search for the modification path that makes ``key``'s equation hold.

    The assistant table must already record the key's (new) value. The value
    table is *not* modified: on success the returned plan is applied by the
    caller; on :class:`UpdateFailure` the table is untouched, which is what
    lets a failed update retry or fall back to reconstruction without first
    undoing half-applied writes.

    ``hooks`` receives ``on_walk_start``/``on_kick``/``on_walk_end`` for
    this attempt (``attempt`` labels retries); an already-consistent
    equation returns without starting a walk and fires no events.
    """
    key_cells = assistant.cells(key)
    v_delta = table.xor_sum(key_cells) ^ assistant.value(key)
    if v_delta == 0:
        return UpdatePlan(path=set(), v_delta=0, steps=0)

    path: Set[Cell] = set()

    def check_consistent(current: int) -> bool:
        cells = assistant.cells(current)
        value = table.xor_sum(cells)
        toggled = sum(1 for cell in cells if cell in path)
        if toggled % 2:
            value ^= v_delta
        return value == assistant.value(current)

    def modify(cell: Cell) -> None:
        path.symmetric_difference_update({cell})

    if hooks is not None:
        hooks.on_walk_start(key, attempt, max_steps)
    try:
        steps = _run_repair_walk(
            check_consistent, modify, assistant, key, strategy,
            space_efficiency, max_steps, hooks,
        )
    except UpdateFailure as failure:
        if hooks is not None:
            hooks.on_walk_end(key, False, failure.steps)
        raise
    if hooks is not None:
        hooks.on_walk_end(key, True, steps)
    return UpdatePlan(path=path, v_delta=v_delta, steps=steps)


def search_update_path(
    table: ValueTable,
    assistant: AssistantTable,
    key: int,
    strategy: UpdateStrategy,
    space_efficiency: float,
    max_steps: int,
    max_attempts: int = 1,
    rng: Optional[random.Random] = None,
    hooks=None,
) -> UpdatePlan:
    """:func:`find_update_path` with randomised retries on a stuck walk.

    Attempt 0 is the deterministic strategy with the base step budget;
    later attempts use the strategy's :meth:`~UpdateStrategy.retry_variant`
    (randomised tie-breaking + ε-greedy exploration for vision) and a 3×
    budget. Raises :class:`UpdateFailure` carrying the total steps spent if
    every attempt fails. ``hooks`` sees each attempt as its own
    walk-start/walk-end pair, labelled with the attempt number.
    """
    if rng is None:
        rng = random.Random(0)
    total_steps = 0
    for attempt in range(max(1, max_attempts)):
        if attempt == 0:
            attempt_strategy = strategy
            budget = max_steps
        else:
            attempt_strategy = strategy.retry_variant(attempt, rng)
            budget = max_steps * 3
        try:
            plan = find_update_path(
                table, assistant, key, attempt_strategy,
                space_efficiency, budget,
                hooks=hooks, attempt=attempt,
            )
        except UpdateFailure as failure:
            total_steps += failure.steps
            continue
        plan.steps += total_steps
        return plan
    raise UpdateFailure(
        f"no repair path within {max_attempts} search attempts",
        steps=total_steps,
    )


def eager_update(
    table: ValueTable,
    assistant: AssistantTable,
    key: int,
    strategy: UpdateStrategy,
    space_efficiency: float,
    max_steps: int,
    hooks=None,
) -> int:
    """Algorithm 1/2 executed directly: rewrite cells during the walk.

    Returns the number of repair steps. On :class:`UpdateFailure` the table
    is left with partial writes (the paper reconstructs in that case); the
    deferred mode above is what the library actually uses. Every broken
    equation in the walk is off by exactly the initial discrepancy
    ``V_delta`` (modifications only ever XOR ``V_delta``), so the rewrite
    is the same XOR the deferred plan applies.
    """
    v_delta = table.xor_sum(assistant.cells(key)) ^ assistant.value(key)
    if v_delta == 0:
        return 0

    def check_consistent(current: int) -> bool:
        return table.xor_sum(assistant.cells(current)) == assistant.value(
            current
        )

    def modify(cell: Cell) -> None:
        table.xor(cell, v_delta)

    return _run_repair_walk(
        check_consistent, modify, assistant, key, strategy,
        space_efficiency, max_steps, hooks,
    )


def make_strategy(
    name: str,
    depth_policy: Optional[DepthPolicy] = None,
    rng: Optional[random.Random] = None,
    use_cache: bool = True,
    stats: Optional[TableStats] = None,
) -> UpdateStrategy:
    """Build a strategy by config name (``"vision"`` or ``"simple"``).

    ``use_cache`` enables the vision strategy's GetCost memoisation;
    ``stats`` (a :class:`TableStats`) receives its hit/miss counters.
    """
    if name == "vision":
        return VisionStrategy(depth_policy, use_cache=use_cache, stats=stats)
    if name == "simple":
        return SimpleStrategy(rng)
    raise ValueError(f"unknown strategy {name!r}")
