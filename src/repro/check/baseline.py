"""Baseline (ratchet) support for ``repro.check``.

A baseline file grandfathers *existing* violations so the checker can be
turned on strict for new code while old debt is paid down incrementally.
The contract is a one-way ratchet:

- A violation whose fingerprint appears in the baseline is not reported.
- A baseline entry that no longer matches anything is *stale* and fails
  the run — the file must shrink as debt is fixed, never silently rot.
- Every entry carries a human ``note`` explaining why it was grandfathered
  rather than fixed; entries without one fail the run.

Fingerprints hash (path, rule, source line), so baselined findings
survive unrelated edits but stop matching when the offending line itself
changes — at which point the author must fix it or re-justify.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.check.violations import Violation

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "write_baseline"]

_FORMAT = "repro-check-baseline/1"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation."""

    fingerprint: str
    rule: str
    path: str
    note: str


@dataclass
class Baseline:
    """A loaded baseline file."""

    entries: List[BaselineEntry]
    source: str = ""

    def index(self) -> Dict[str, BaselineEntry]:
        return {entry.fingerprint: entry for entry in self.entries}

    def apply(
        self, violations: List[Violation]
    ) -> Tuple[List[Violation], List[BaselineEntry], List[BaselineEntry]]:
        """Split ``violations`` against the baseline.

        Returns ``(surviving, matched, stale)``: violations not covered
        by any entry, the entries that matched something, and the entries
        that matched nothing (stale — the ratchet must advance).
        """
        by_fingerprint = self.index()
        surviving: List[Violation] = []
        matched: Dict[str, BaselineEntry] = {}
        for violation in violations:
            entry = by_fingerprint.get(violation.fingerprint())
            if entry is not None and entry.rule == violation.rule:
                matched[entry.fingerprint] = entry
            else:
                surviving.append(violation)
        stale = [
            entry for entry in self.entries
            if entry.fingerprint not in matched
        ]
        return surviving, list(matched.values()), stale

    def unjustified(self) -> List[BaselineEntry]:
        return [entry for entry in self.entries if not entry.note.strip()]


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; raises ValueError on a malformed one."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ValueError(
            f"{path}: not a {_FORMAT} file (regenerate with "
            "--write-baseline)"
        )
    raw_entries = payload.get("entries", [])
    if not isinstance(raw_entries, list):
        raise ValueError(f"{path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for raw in raw_entries:
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: baseline entries must be objects")
        entries.append(BaselineEntry(
            fingerprint=str(raw.get("fingerprint", "")),
            rule=str(raw.get("rule", "")),
            path=str(raw.get("path", "")),
            note=str(raw.get("note", "")),
        ))
    return Baseline(entries=entries, source=str(path))


def write_baseline(path: Path, violations: List[Violation]) -> int:
    """Serialise ``violations`` as a fresh baseline; returns the count.

    Notes are written empty — the author must fill in a justification for
    every entry before the checker accepts the file (deliberate friction:
    a baseline is a debt ledger, not a mute button).
    """
    payload = {
        "format": _FORMAT,
        "entries": [
            {
                "fingerprint": violation.fingerprint(),
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "snippet": violation.snippet,
                "note": "",
            }
            for violation in violations
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return len(violations)
