"""R7xx — numpy aliasing and dtype contracts.

The engine backend (PR 6) trades safety for speed by handing out *views*
of the value-table planes (``_cells``/``_words``) instead of copies. A
view is an alias: mutate it anywhere and you have mutated the table,
bypassing the XOR bookkeeping that R101/R5xx guard on the sanctioned
write path. Three rules police the alias boundary:

- **R701** — no in-place mutation (``+=``, slice-assign, ``np.add.at``)
  of an array *derived from* plane storage outside the plane-owner
  modules (:attr:`CheckConfig.plane_writer_modules`). Derivation is a
  function-local taint pass: reading ``._cells``/``._words`` seeds the
  taint; ``reshape``/``ravel``/``view``/``.T``/slicing propagate it;
  ``.copy()``/``astype``/``tolist`` (materialising calls) break it.
- **R702** — dtype contracts: a ``# repro: arrays(int64, bool)`` pragma
  on a def is an allowlist; every *literal* ``dtype=`` kwarg and literal
  ``.astype(...)`` argument in the body must name one of the listed
  dtypes. This pins the hash-family width assumptions (uint64 planes,
  int64 index math) where the kernels rely on them.
- **R703** — hotpath functions must not let a storage view *escape*:
  returning a tainted array without an explicit ``.copy()`` hands an
  alias of live table memory to arbitrary callers.

Like every rule family, ``noqa[R7...]`` with a justification sanctions a
site; the plane-owner modules are exempt from R701 wholesale because
mutating their own storage is their job.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = ["analysis_summary"]


# ---------------------------------------------------------------------------
# taint: which expressions are (views of) plane storage?
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _Taint:
    """Function-local view-provenance: is this expression storage-derived?"""

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        self.names: Set[str] = set()

    def tainted(self, node: ast.expr) -> bool:
        config = self.config
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            if node.attr in config.storage_attrs:
                return True
            if node.attr == "T":  # transpose property is a view
                return self.tainted(node.value)
            return False
        if isinstance(node, ast.Subscript):
            return self.tainted(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in config.copy_methods:
                    return False  # materialising call breaks the alias
                if func.attr in config.view_methods:
                    return self.tainted(func.value)
                return False
            dotted = _dotted(func) or ""
            if dotted.endswith("asarray") or dotted.endswith("ascontiguousarray"):
                # asarray of an ndarray is a no-copy passthrough
                return bool(node.args) and self.tainted(node.args[0])
            return False
        if isinstance(node, ast.IfExp):
            return self.tainted(node.body) or self.tainted(node.orelse)
        return False

    def absorb_assignments(self, scope: ast.AST) -> None:
        """Fixed-point taint propagation through simple assignments."""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                else:
                    continue
                if not self.tainted(value):
                    continue
                for target in targets:
                    if (isinstance(target, ast.Name)
                            and target.id not in self.names):
                        self.names.add(target.id)
                        changed = True


def _function_scopes(
    checked: CheckedFile,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Top-level functions/methods; nested defs are folded into their
    parent's walk (a flat-namespace approximation, same as dataflow)."""
    for node in ast.walk(checked.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        parent = checked.parent(node)
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node


# ---------------------------------------------------------------------------
# R701 — in-place mutation of storage views outside plane owners
# ---------------------------------------------------------------------------


def _mutations(
    scope: ast.AST, taint: _Taint
) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(scope):
        if isinstance(node, ast.AugAssign):
            if taint.tainted(node.target):
                yield node, "augmented assignment to a storage view"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and taint.tainted(target.value)):
                    yield node, "slice-assignment into a storage view"
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "at"
                    and node.args and taint.tainted(node.args[0])):
                ufunc = _dotted(func.value) or "ufunc"
                yield node, f"{ufunc}.at() scatters into a storage view"


@register
def rule_view_mutation(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R701: only plane owners mutate plane storage in place."""
    if config.owns_planes(checked.rel):
        return
    for scope in _function_scopes(checked):
        taint = _Taint(config)
        taint.absorb_assignments(scope)
        for node, how in _mutations(scope, taint):
            yield checked.violation(
                "R701", node,
                f"{how} — this array aliases value-table plane storage "
                "(derived from a ._cells/._words read); mutate through "
                "the table's write API or .copy() first",
            )


# ---------------------------------------------------------------------------
# R702 — literal dtypes against the arrays(...) contract
# ---------------------------------------------------------------------------


def _literal_dtype_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr          # np.int64 -> "int64"
    if isinstance(node, ast.Name):
        return node.id            # bool, int
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value         # dtype="uint64"
    return None


def _dtype_sites(scope: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg != "dtype":
                continue
            name = _literal_dtype_name(kw.value)
            if name is not None:
                yield kw.value, name
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "astype"
                and node.args):
            name = _literal_dtype_name(node.args[0])
            if name is not None:
                yield node, name


@register
def rule_dtype_contract(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R702: literal dtypes must be on the def's arrays(...) allowlist."""
    for scope in _function_scopes(checked):
        contract = checked.arrays_contract(scope)
        if contract is None:
            continue
        allowed = set(contract)
        for node, name in _dtype_sites(scope):
            if name in allowed:
                continue
            yield checked.violation(
                "R702", node,
                f"dtype {name!r} is not in {scope.name}'s arrays contract "
                f"({', '.join(contract)}) — widen the pragma or fix the "
                "width",
            )


# ---------------------------------------------------------------------------
# R703 — storage views escaping hotpath functions
# ---------------------------------------------------------------------------


@register
def rule_view_escape(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R703: hotpath returns must not alias live plane storage."""
    for scope in _function_scopes(checked):
        if not checked.is_hotpath(scope):
            continue
        taint = _Taint(config)
        taint.absorb_assignments(scope)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if not taint.tainted(node.value):
                continue
            yield checked.violation(
                "R703", node,
                f"hotpath {scope.name} returns a view of plane storage — "
                "callers get an alias of live table memory; return an "
                "explicit .copy()",
            )


# ---------------------------------------------------------------------------
# CLI section (--arrays)
# ---------------------------------------------------------------------------


def analysis_summary(
    sources: Dict[str, str], config: Optional[CheckConfig] = None
) -> Dict[str, Any]:
    """Aggregate array-analysis statistics for the ``--arrays`` JSON
    section. Violations flow through the normal engine pipeline; this
    reports the coverage: contracts seen, dtype literals checked, taint
    seeds found."""
    from repro.check.engine import CheckedFile as _CheckedFile
    from repro.check.pragmas import parse_pragmas

    if config is None:
        config = CheckConfig()
    contracts = 0
    dtype_literals = 0
    taint_seeds = 0
    hotpaths = 0
    files_scanned = 0
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel])
        except SyntaxError:
            continue
        files_scanned += 1
        checked = _CheckedFile(rel, sources[rel],
                               tree, parse_pragmas(sources[rel], rel))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in config.storage_attrs):
                taint_seeds += 1
        for scope in _function_scopes(checked):
            if checked.arrays_contract(scope) is not None:
                contracts += 1
                dtype_literals += sum(1 for _ in _dtype_sites(scope))
            if checked.is_hotpath(scope):
                hotpaths += 1
    return {
        "files_scanned": files_scanned,
        "dtype_contracts": contracts,
        "dtype_literals_checked": dtype_literals,
        "storage_reads": taint_seeds,
        "hotpath_functions": hotpaths,
        "plane_writer_modules": list(config.plane_writer_modules),
    }
