"""R2 — hot-path purity for ``# repro: hotpath`` functions.

PR 1 vectorised the build/update fast path and PR 2 promised the
observability hooks stay zero-cost when disabled; these rules keep both
promises honest on every function marked with the ``hotpath`` pragma:

- R201: no dict/set allocation (display, comprehension, or ``dict()``/
  ``set()`` call) lexically inside a loop — per-iteration hash-container
  churn is exactly what the PR-1 flat-array rewrites removed.
- R202: every hooks call must sit under an ``<hooks> is not None`` guard,
  the "zero cost when disabled" contract of ``repro.obs.hooks``.
- R203: no bare ``except:`` — a hot path swallowing ``KeyboardInterrupt``
  or masking ``MemoryError`` turns a crash into corruption.
- R204: no direct ``random.*``/``time.*`` module calls — hot paths take
  an injected RNG/clock so runs stay deterministic and mockable.

Nested ``def``s (the walk callbacks) are analysed as part of their
enclosing hot function, with loop depth reset at the boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = ["check_hotpaths"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_MUTABLE_BUILTINS = ("dict", "set")
_BANNED_MODULES = ("random", "time")


def _alloc_description(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Dict):
        return "dict display"
    if isinstance(node, ast.Set):
        return "set display"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_BUILTINS):
        return f"{node.func.id}() call"
    return None


def _hooks_call(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(receiver, method)`` if this call targets a hooks object."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    text = ast.unparse(func.value)
    last = text.rsplit(".", 1)[-1]
    if last.endswith("hooks") or last == "_hooks":
        return text, func.attr
    return None


def _test_guards(test: ast.expr, receiver: str) -> bool:
    """Does ``test`` establish that ``receiver`` is not None?"""
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            if (len(node.ops) == 1 and isinstance(node.ops[0], ast.IsNot)
                    and isinstance(node.comparators[0], ast.Constant)
                    and node.comparators[0].value is None
                    and ast.unparse(node.left) == receiver):
                return True
    return False


def _is_guarded(checked: CheckedFile, call: ast.Call, receiver: str,
                boundary: ast.AST) -> bool:
    """Is ``call`` under an ``is not None`` guard within ``boundary``?"""
    node: ast.AST = call
    for ancestor in checked.ancestors(call):
        if isinstance(ancestor, (ast.If, ast.IfExp, ast.While)):
            if _test_guards(ancestor.test, receiver):
                return True
        if ancestor is boundary:
            break
        node = ancestor
    return False


def _walk_region(
    function: FunctionNode,
) -> Iterator[Tuple[ast.AST, int]]:
    """Yield every node in the function with its lexical loop depth.

    Nested function bodies are included (loop depth restarts at the
    nested ``def``); nested loops increment the depth for their bodies.
    """
    def visit(node: ast.AST, depth: int) -> Iterator[Tuple[ast.AST, int]]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                yield child, depth
                for grandchild in ast.iter_child_nodes(child):
                    yield from visit_value(grandchild, depth + 1)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_depth = 0
            yield child, child_depth
            yield from visit(child, child_depth)

    def visit_value(node: ast.AST, depth: int
                    ) -> Iterator[Tuple[ast.AST, int]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            depth = 0  # a def's body does not run once per iteration
        yield node, depth
        yield from visit(node, depth)

    yield from visit(function, 0)


@register
def check_hotpaths(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R201–R204 over every pragma-marked hot function."""
    functions = checked.hotpath_functions()
    seen_functions = set(id(f) for f in functions)
    for function in functions:
        # Nested hot functions are covered by their own pragma pass.
        region: List[Tuple[ast.AST, int]] = [
            (node, depth) for node, depth in _walk_region(function)
            if not (id(node) in seen_functions and node is not function)
        ]
        for node, depth in region:
            alloc = _alloc_description(node)
            if alloc is not None and depth > 0:
                yield checked.violation(
                    "R201", node,
                    f"hotpath {function.name!r} allocates a {alloc} inside "
                    "a loop — hoist it or use the flat-array form",
                )
            if isinstance(node, ast.Call):
                hooks_call = _hooks_call(node)
                if hooks_call is not None:
                    receiver, method = hooks_call
                    if not _is_guarded(checked, node, receiver, function):
                        yield checked.violation(
                            "R202", node,
                            f"hotpath {function.name!r} calls "
                            f"{receiver}.{method}() without an "
                            f"'{receiver} is not None' guard (hooks must "
                            "be zero-cost when disabled)",
                        )
                if (isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in _BANNED_MODULES):
                    yield checked.violation(
                        "R204", node,
                        f"hotpath {function.name!r} calls "
                        f"{node.func.value.id}.{node.func.attr}() directly "
                        "— inject an RNG/clock instead",
                    )
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield checked.violation(
                    "R203", node,
                    f"hotpath {function.name!r} uses a bare 'except:' — "
                    "catch the specific failure type",
                )
