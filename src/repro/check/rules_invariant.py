"""R5 — XOR-invariant dataflow over the write paths (project rules).

The invariant ``A1 ^ A2 ^ A3 == value`` lives in two halves: the value
table holds the XOR equations, the assistant table holds the
registrations that say which equations must hold. The R1xx rules police
*who* may write cells; these rules police *when* — the orderings and
exception edges that a per-file, per-line view cannot see:

- **R501** — in the invariant modules, a public mutation path that
  registers a key in the assistant table and afterwards reaches a
  cell-write effect (directly or through calls, resolved by
  :mod:`repro.check.dataflow`) must do so under a ``try`` whose handler
  (or ``finally``) rolls the registration back — otherwise an exception
  mid-write leaves a registered key whose equation never holds.
- **R502** — the interprocedural R101: a call site in a non-sanctioned
  module whose resolved targets transitively write cells escapes the
  write-path encapsulation even though no mutating call appears on the
  line. Calls that resolve only to the public mutation API
  (``insert``/``update``/``bulk_load``/...) are the sanctioned front
  door and pass.
- **R503** (per-file) — a per-cell ``xor()``/``set()`` on a table handle
  lexically inside a loop, outside the sanctioned all-or-nothing
  appliers: a mid-loop exception leaves the invariant *partially*
  applied, the exact hazard the deferred two-phase update exists to
  avoid. Route per-cell writes through ``UpdatePlan.apply``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.check.dataflow import (
    FunctionInfo,
    ProjectModel,
    is_table_receiver,
    receiver_text,
)
from repro.check.engine import (
    CheckConfig,
    CheckedFile,
    register,
    register_project,
)
from repro.check.violations import Violation

__all__ = [
    "check_invariant_restore",
    "check_write_escapes",
    "check_partial_loop_writes",
]

#: the per-cell mutators R503 cares about — ``clear``/``load_dense``/
#: ``fill`` replace the whole table atomically from the invariant's point
#: of view and are R101's business, not a partial-application hazard.
_PER_CELL_MUTATORS = ("xor", "set")


def _assistant_calls(
    info: FunctionInfo, methods: Tuple[str, ...], config: CheckConfig
) -> List[ast.Call]:
    """Calls of the named assistant-table methods inside ``info``."""
    out: List[ast.Call] = []
    for node in ast.walk(info.node):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in methods):
            continue
        receiver = receiver_text(node.func.value)
        if receiver is not None and config.is_assistant_receiver(receiver):
            out.append(node)
    return out


def _rollback_protected(
    info: FunctionInfo, site: ast.AST, config: CheckConfig
) -> bool:
    """True if ``site`` sits in a ``try`` body whose handlers (or
    ``finally``) roll the assistant registration back."""
    checked = info.checked
    child: ast.AST = site
    for ancestor in checked.ancestors(site):
        if isinstance(ancestor, ast.Try) and any(
            child is stmt for stmt in ancestor.body
        ):
            recovery: List[ast.AST] = list(ancestor.handlers)
            recovery.extend(ancestor.finalbody)
            for block in recovery:
                for node in ast.walk(block):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in config.assistant_rollbacks):
                        continue
                    receiver = receiver_text(node.func.value)
                    if (receiver is not None
                            and config.is_assistant_receiver(receiver)):
                        return True
        child = ancestor
    return False


@register_project
def check_invariant_restore(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R501: registration followed by an unprotected cell-write effect."""
    for info in model.functions.values():
        if not config.is_invariant_module(info.rel) or not info.is_public:
            continue
        registrations = _assistant_calls(
            info, config.assistant_registrations, config
        )
        if not registrations:
            continue
        first_registration = min(node.lineno for node in registrations)
        registration_ids = {id(node) for node in registrations}
        effects: List[Tuple[ast.AST, int, str]] = [
            (site.node, site.line, site.detail)
            for site in info.effective_writes()
        ]
        for call in info.calls:
            writers = call.writing_targets()
            if writers:
                effects.append((
                    call.node, call.line,
                    f"{call.callee}() -> {writers[0].write_witness}",
                ))
        for node, line, detail in effects:
            if line < first_registration or id(node) in registration_ids:
                continue
            if _rollback_protected(info, node, config):
                continue
            yield info.checked.violation(
                "R501", node,
                f"{info.qualname} registers in the assistant table (line "
                f"{first_registration}) and then reaches a cell write via "
                f"{detail} with no exception-edge rollback — wrap the "
                "write in try/except restoring the assistant entry, or "
                "the XOR invariant leaks on failure",
            )


@register_project
def check_write_escapes(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R502: a call reaching cell writes from a non-sanctioned module."""
    for info in model.functions.values():
        if config.allows_table_writes(info.rel):
            continue
        for call in info.calls:
            writers = call.writing_targets()
            if not writers:
                continue
            if all(writer.name in config.public_mutation_api
                   for writer in writers):
                continue
            witness = writers[0].write_witness
            yield info.checked.violation(
                "R502", call.node,
                f"call {call.callee}() reaches value-table cell writes "
                f"({witness}) from outside the sanctioned write-path "
                "modules — go through the public mutation API "
                "(insert/update/bulk_load/...) instead",
            )


@register
def check_partial_loop_writes(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R503: a per-cell table write lexically inside a loop."""
    if not config.is_invariant_module(checked.rel):
        return
    reported: set = set()
    for loop in ast.walk(checked.tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for node in ast.walk(loop):
            if id(node) in reported:
                continue
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _PER_CELL_MUTATORS):
                continue
            receiver = receiver_text(node.func.value)
            if (receiver is None or receiver == "self"
                    or not is_table_receiver(receiver, config)):
                continue
            function = checked.enclosing_function(node)
            if function is not None:
                classes = checked.enclosing_classes(node)
                qualname = (f"{classes[0]}.{function.name}" if classes
                            else function.name)
                if qualname in config.partial_write_appliers:
                    continue
            reported.add(id(node))
            yield checked.violation(
                "R503", node,
                f"per-cell write {receiver}.{node.func.attr}() inside a "
                "loop — an exception mid-loop leaves the XOR invariant "
                "partially applied; apply deltas through UpdatePlan.apply "
                "or a sanctioned all-or-nothing applier",
            )
