"""Deterministic schedule exploration for the concurrent update path.

The race detector (:mod:`repro.check.vectorclock`) observes whatever
interleaving the OS happens to produce; this module *controls* the
interleaving. Scenario tasks run on real threads, but every
synchronisation-relevant action — a cooperative lock acquisition, a
value-table access — first parks the thread and hands control to a
single-threaded driver that picks which task advances next. One
schedule is therefore a sequence of task names, replayable exactly, and
an explorer enumerates schedules systematically:

- **exhaustive** — depth-first over the full tree of scheduling choices,
  branching at every step where more than one task was runnable;
- **pruned** — the same DFS with sleep-set pruning in the DPOR style:
  after exploring task *t* at a node, *t* goes to sleep in the sibling
  branches and is not scheduled again until an executed step's access
  footprint conflicts with *t*'s pending action, skipping interleavings
  that only commute independent steps;
- **random** — seeded random walks for quick bounded smoke coverage.

Blocking is cooperative: a task that needs an unavailable lock leaves
the runnable set instead of blocking its OS thread, so a schedule in
which no task can advance is reported as a *deadlock* finding rather
than a hung test. At the end of every schedule the scenario's ``check``
callable runs on the driver thread (typically ``check_invariants()``
plus :meth:`SchedulerRun.assert_locks_quiescent`); a failing check, a
task exception, or a deadlock is recorded on the
:class:`ScheduleResult` with the full schedule that produced it.

Everything is deterministic by construction: the driver picks among
*sorted* task names, DFS branch order is fixed, and the random mode
uses a seeded :class:`random.Random` — the same ``explore()`` call
yields the same schedules every time.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.concurrent import ConcurrentVisionEmbedder, RWLock
from repro.core.value_table import Cell

__all__ = [
    "ScheduleError",
    "Scenario",
    "Step",
    "ScheduleResult",
    "ExplorationResult",
    "SchedulerRun",
    "CooperativeMutex",
    "CooperativeRWLock",
    "NoopRWLock",
    "YieldingValueTable",
    "footprints_conflict",
    "run_schedule",
    "explore",
    "embedder_scenario",
    "gate_bypass_scenario",
]

#: a location is a tagged tuple — ``("cell", array, index)`` for one
#: value-table cell, ``("table",)`` for whole-table operations (conflicts
#: with every cell) and ``("lock", n)`` for the *n*-th lock registered
#: with the run (stable across replays, unlike ``id()``).
Location = Tuple[object, ...]
Footprint = FrozenSet[Tuple[Location, str]]

_TABLE: Location = ("table",)
_MAIN = "<driver>"


class ScheduleError(RuntimeError):
    """The harness itself failed (stall, diverged replay, bad scenario)."""


class _ScheduleAbort(BaseException):
    """Raised inside a task thread to unwind it when a run is aborted.

    Derives from ``BaseException`` so scenario-level ``except Exception``
    handlers cannot swallow it; ``finally`` blocks (lock releases) still
    run while the thread unwinds.
    """


def _cell_location(cell: Cell) -> Location:
    return ("cell", int(cell[0]), int(cell[1]))


def _locations_conflict(a: Location, b: Location) -> bool:
    if a == b:
        return True
    return {a[0], b[0]} == {"table", "cell"}


def footprints_conflict(
    a: Optional[Footprint], b: Optional[Footprint]
) -> bool:
    """True if two access footprints do not commute.

    ``None`` (an unknown footprint, e.g. a task's first segment) is
    conservatively treated as conflicting with everything.
    """
    if a is None or b is None:
        return True
    for loc_a, kind_a in a:
        for loc_b, kind_b in b:
            if (kind_a == "write" or kind_b == "write") and \
                    _locations_conflict(loc_a, loc_b):
                return True
    return False


class _Task:
    """One scenario task: a callable plus its scheduling state."""

    def __init__(self, name: str, fn: Callable[[], None]) -> None:
        self.name = name
        self.fn = fn
        self.thread: Optional[threading.Thread] = None
        self.parked = False
        self.granted = False
        self.finished = False
        self.abort = False
        self.pending: Optional[Footprint] = None
        self.wants: Optional[Tuple[Any, str]] = None
        self.error: Optional[BaseException] = None


@dataclass
class Scenario:
    """Tasks to interleave plus an end-of-schedule check.

    ``tasks`` maps task name -> zero-argument callable; ``check`` (if
    given) runs on the driver thread after every task finished and
    should raise on any violated postcondition.
    """

    tasks: Dict[str, Callable[[], None]]
    check: Optional[Callable[[], None]] = None


@dataclass(frozen=True)
class Step:
    """One scheduling decision: who ran, who else could have."""

    chosen: str
    runnable: Tuple[str, ...]
    footprint: Optional[Footprint]
    sleeping: Tuple[Tuple[str, Optional[Footprint]], ...] = ()


@dataclass
class ScheduleResult:
    """Outcome of one fully executed schedule."""

    schedule: Tuple[str, ...]
    steps: Tuple[Step, ...]
    error: Optional[str] = None
    redundant: bool = False


@dataclass
class ExplorationResult:
    """Aggregate outcome of :func:`explore`."""

    mode: str
    results: List[ScheduleResult] = field(default_factory=list)

    @property
    def schedules(self) -> int:
        return len(self.results)

    @property
    def distinct(self) -> int:
        return len({result.schedule for result in self.results})

    @property
    def failures(self) -> List[ScheduleResult]:
        return [result for result in self.results if result.error]

    @property
    def deadlocks(self) -> List[ScheduleResult]:
        return [result for result in self.results
                if result.error is not None
                and result.error.startswith("deadlock")]

    def summary(self) -> Dict[str, object]:
        """JSON-ready counters (the CLI ``--explore`` section)."""
        return {
            "mode": self.mode,
            "schedules": self.schedules,
            "distinct": self.distinct,
            "failures": len(self.failures),
            "deadlocks": len(self.deadlocks),
        }


class SchedulerRun:
    """One scheduled execution: tasks, cooperative locks, the driver.

    Scenario factories receive the run instance, construct their locks
    and yielding proxies against it, and return a :class:`Scenario`;
    :func:`run_schedule` then drives the tasks through one interleaving.
    """

    #: wall-clock bound on any single driver wait — a task blocking
    #: outside a cooperative primitive (a real lock, real I/O) would
    #: otherwise hang the harness silently.
    stall_timeout: float = 30.0

    def __init__(self) -> None:
        self._control = threading.Condition()
        self._tasks: Dict[str, _Task] = {}
        self._idents: Dict[int, _Task] = {}
        self._locks: List[Any] = []

    # -- scenario-facing surface ---------------------------------------

    def add_task(self, name: str, fn: Callable[[], None]) -> None:
        if name in self._tasks:
            raise ScheduleError(f"duplicate task name {name!r}")
        self._tasks[name] = _Task(name, fn)

    def yield_point(self, footprint: Optional[Footprint] = None) -> None:
        """Park the calling task until the driver grants its next step.

        No-op on unregistered threads (the driver itself during scenario
        setup and end-of-schedule checks), so instrumented structures
        stay usable outside scheduled sections.
        """
        task = self._idents.get(threading.get_ident())
        if task is not None:
            self._park(task, footprint, None)

    def assert_locks_quiescent(self) -> None:
        """Raise unless every cooperative lock is fully released."""
        held = [type(lock).__name__ for lock in self._locks
                if not lock._idle()]
        if held:
            raise ScheduleError(
                f"cooperative locks still held at end of schedule: {held}"
            )

    # -- lock plumbing -------------------------------------------------

    def _register_lock(self, lock: Any) -> int:
        self._locks.append(lock)
        return len(self._locks) - 1

    def _lock_acquire(self, lock: Any, mode: str) -> None:
        task = self._idents.get(threading.get_ident())
        if task is None:
            with self._control:
                if not lock._grantable(None, mode, self):
                    raise ScheduleError(
                        f"driver thread would block on "
                        f"{type(lock).__name__} ({mode})"
                    )
                lock._take(None, mode)
            return
        self._park(task, lock._lock_footprint(), (lock, mode))

    def _lock_release(self, lock: Any, mode: str) -> None:
        task = self._idents.get(threading.get_ident())
        with self._control:
            lock._untake(task, mode)
            self._control.notify_all()

    def _writer_waiting(self, lock: Any) -> bool:
        """A parked task wants this lock in write mode (control held)."""
        return any(
            not task.finished and task.parked
            and task.wants == (lock, "write")
            for task in self._tasks.values()
        )

    # -- task side -----------------------------------------------------

    def _park(
        self,
        task: _Task,
        footprint: Optional[Footprint],
        wants: Optional[Tuple[Any, str]],
    ) -> None:
        with self._control:
            task.pending = footprint
            task.wants = wants
            task.parked = True
            self._control.notify_all()
            while not task.granted:
                if task.abort:
                    task.parked = False
                    raise _ScheduleAbort()
                self._control.wait()
            task.granted = False
            task.pending = None
            if wants is not None:
                # The driver only grants when the lock is grantable, and
                # nothing else runs between grant and here, so taking it
                # now is atomic from the schedule's point of view.
                wants[0]._take(task, wants[1])
                task.wants = None

    def _task_main(self, task: _Task) -> None:
        self._idents[threading.get_ident()] = task
        try:
            self._park(task, None, None)  # await the first grant
            task.fn()
        except _ScheduleAbort:
            pass
        except BaseException as exc:  # recorded, surfaced as the result
            task.error = exc
        finally:
            self._idents.pop(threading.get_ident(), None)
            with self._control:
                task.finished = True
                task.parked = False
                self._control.notify_all()

    # -- driver --------------------------------------------------------

    def _all_settled(self) -> bool:
        return all(task.finished or task.parked
                   for task in self._tasks.values())

    def _abort_all(self) -> None:
        for task in self._tasks.values():
            if not task.finished:
                task.abort = True
        self._control.notify_all()

    def _execute(
        self,
        scenario: Scenario,
        prefix: Tuple[str, ...],
        branch_sleep: Dict[str, Optional[Footprint]],
        max_steps: int,
        chooser: Optional[Callable[[int, Tuple[str, ...]], str]],
    ) -> ScheduleResult:
        for task in self._tasks.values():
            task.thread = threading.Thread(
                target=self._task_main, args=(task,),
                name=f"sched-{task.name}", daemon=True,
            )
            task.thread.start()
        steps: List[Step] = []
        sleeping: Dict[str, Optional[Footprint]] = {}
        error: Optional[str] = None
        redundant = False
        while True:
            with self._control:
                while not self._all_settled():
                    if not self._control.wait(timeout=self.stall_timeout):
                        self._abort_all()
                        raise ScheduleError(
                            "scheduler stalled: a task blocked outside "
                            "the cooperative primitives"
                        )
                active = [task for task in self._tasks.values()
                          if not task.finished]
                if not active:
                    break
                if len(steps) == len(prefix):
                    # Entering the branch node: install the sleep set
                    # inherited from the parent exploration.
                    sleeping.update(branch_sleep)
                    branch_sleep = {}
                runnable = [
                    task for task in active
                    if task.wants is None
                    or task.wants[0]._grantable(task, task.wants[1], self)
                ]
                if not runnable:
                    waiting = ", ".join(sorted(
                        f"{task.name} waiting for "
                        f"{type(task.wants[0]).__name__}/{task.wants[1]}"
                        for task in active if task.wants is not None
                    ))
                    error = f"deadlock: {waiting or 'no runnable task'}"
                    self._abort_all()
                    break
                awake = [task for task in runnable
                         if task.name not in sleeping]
                if not awake:
                    # Every runnable task is asleep: this interleaving
                    # is provably redundant, but finish it anyway so the
                    # threads unwind cleanly.
                    redundant = True
                    sleeping.clear()
                    awake = runnable
                names = tuple(sorted(task.name for task in awake))
                if chooser is not None:
                    pick = chooser(len(steps), names)
                elif len(steps) < len(prefix):
                    pick = prefix[len(steps)]
                else:
                    pick = names[0]
                if pick not in names:
                    error = (
                        f"replay diverged at step {len(steps)}: "
                        f"{pick!r} not runnable among {names}"
                    )
                    self._abort_all()
                    break
                chosen = self._tasks[pick]
                for name in [n for n, fp in sleeping.items()
                             if footprints_conflict(fp, chosen.pending)]:
                    del sleeping[name]
                steps.append(Step(
                    chosen=pick,
                    runnable=names,
                    footprint=chosen.pending,
                    sleeping=tuple(sorted(sleeping.items())),
                ))
                if len(steps) > max_steps:
                    error = f"step budget exceeded ({max_steps})"
                    self._abort_all()
                    break
                chosen.parked = False
                chosen.granted = True
                self._control.notify_all()
        for task in self._tasks.values():
            if task.thread is not None:
                task.thread.join(timeout=self.stall_timeout)
                if task.thread.is_alive():
                    error = error or f"task {task.name} failed to unwind"
        if error is None:
            for task in self._tasks.values():
                if task.error is not None:
                    error = f"task {task.name} raised {task.error!r}"
                    break
        if error is None and scenario.check is not None:
            try:
                scenario.check()
            except Exception as exc:
                error = f"end-of-schedule check failed: {exc}"
        return ScheduleResult(
            schedule=tuple(step.chosen for step in steps),
            steps=tuple(steps),
            error=error,
            redundant=redundant,
        )


class CooperativeMutex:
    """Reentrant cooperative mutex — the update-mutex stand-in."""

    def __init__(self, run: SchedulerRun) -> None:
        self._run = run
        self._index = run._register_lock(self)
        self._owner: Optional[object] = None
        self._depth = 0

    def __enter__(self) -> "CooperativeMutex":
        self._run._lock_acquire(self, "write")
        return self

    def __exit__(self, *exc: object) -> bool:
        self._run._lock_release(self, "write")
        return False

    def _lock_footprint(self) -> Footprint:
        return frozenset({(("lock", self._index), "write")})

    def _grantable(
        self, task: Optional[_Task], mode: str, run: SchedulerRun
    ) -> bool:
        key: object = task if task is not None else _MAIN
        return self._owner is None or self._owner is key

    def _take(self, task: Optional[_Task], mode: str) -> None:
        self._owner = task if task is not None else _MAIN
        self._depth += 1

    def _untake(self, task: Optional[_Task], mode: str) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self._owner = None
            self._depth = 0

    def _idle(self) -> bool:
        return self._owner is None


class CooperativeRWLock(RWLock):
    """Writer-preferring RW gate whose blocking the scheduler mediates.

    Mirrors :class:`~repro.core.concurrent.RWLock` semantics exactly —
    including writer preference: while any task is parked waiting for
    the write side, new read acquisitions are not grantable — but a task
    that cannot proceed leaves the runnable set instead of blocking its
    OS thread, so every blocking decision is a recorded scheduling step.
    """

    def __init__(self, run: SchedulerRun) -> None:
        super().__init__()
        self._run = run
        self._index = run._register_lock(self)
        self._read_holders: List[object] = []
        self._write_holder: Optional[object] = None

    def acquire_read(self) -> None:
        self._run._lock_acquire(self, "read")

    def release_read(self) -> None:
        self._run._lock_release(self, "read")

    def acquire_write(self) -> None:
        self._run._lock_acquire(self, "write")

    def release_write(self) -> None:
        self._run._lock_release(self, "write")

    def _lock_footprint(self) -> Footprint:
        return frozenset({(("lock", self._index), "write")})

    def _grantable(
        self, task: Optional[_Task], mode: str, run: SchedulerRun
    ) -> bool:
        if mode == "read":
            return (self._write_holder is None
                    and not run._writer_waiting(self))
        return self._write_holder is None and not self._read_holders

    def _take(self, task: Optional[_Task], mode: str) -> None:
        key: object = task if task is not None else _MAIN
        if mode == "read":
            self._read_holders.append(key)
        else:
            self._write_holder = key

    def _untake(self, task: Optional[_Task], mode: str) -> None:
        key: object = task if task is not None else _MAIN
        if mode == "read":
            self._read_holders.remove(key)
        else:
            self._write_holder = None

    def _idle(self) -> bool:
        return self._write_holder is None and not self._read_holders


class NoopRWLock(RWLock):
    """A rebuild gate that never excludes anyone — a seeded *bug*.

    Exists so tests can prove the explorer catches the interleaving a
    correct gate forbids (a lookup observing a half-rebuilt table); it
    must never be wired into production paths.
    """

    def __init__(self, run: SchedulerRun) -> None:
        super().__init__()
        run._register_lock(self)

    def acquire_read(self) -> None:
        return

    def release_read(self) -> None:
        return

    def acquire_write(self) -> None:
        return

    def release_write(self) -> None:
        return

    def _idle(self) -> bool:
        return True


class YieldingValueTable:
    """Value-table proxy that parks before every access.

    Same surface mirroring as
    :class:`~repro.check.vectorclock.ClockedValueTable`, but instead of
    recording the access it *declares* it (as the pending footprint) and
    waits for the driver to schedule it — making every table access an
    interleaving point with a footprint sleep sets can reason about.
    """

    def __init__(self, run: SchedulerRun, inner: Any) -> None:
        self._run = run
        self._inner = inner

    # -- reads ---------------------------------------------------------

    def get(self, cell: Cell) -> int:
        self._run.yield_point(
            frozenset({(_cell_location(cell), "read")})
        )
        return int(self._inner.get(cell))

    def xor_sum(self, cells: Iterable[Cell]) -> int:
        cell_list = list(cells)
        self._run.yield_point(frozenset(
            (_cell_location(cell), "read") for cell in cell_list
        ))
        return int(self._inner.xor_sum(cell_list))

    def lookup_batch(self, index_arrays: Any) -> Any:
        self._run.yield_point(frozenset({(_TABLE, "read")}))
        return self._inner.lookup_batch(index_arrays)

    def to_dense(self) -> Any:
        self._run.yield_point(frozenset({(_TABLE, "read")}))
        return self._inner.to_dense()

    # -- writes --------------------------------------------------------

    def xor(self, cell: Cell, delta: int) -> None:
        self._run.yield_point(
            frozenset({(_cell_location(cell), "write")})
        )
        self._inner.xor(cell, delta)

    def set(self, cell: Cell, value: int) -> None:
        self._run.yield_point(
            frozenset({(_cell_location(cell), "write")})
        )
        self._inner.set(cell, value)

    def load_dense(self, dense: Any) -> None:
        self._run.yield_point(frozenset({(_TABLE, "write")}))
        self._inner.load_dense(dense)

    def clear(self) -> None:
        self._run.yield_point(frozenset({(_TABLE, "write")}))
        self._inner.clear()

    # -- passthrough ---------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, YieldingValueTable):
            other = other._inner
        return bool(self._inner == other)

    def __hash__(self) -> int:  # identity, like the wrapped tables
        return id(self)


def run_schedule(
    factory: Callable[[SchedulerRun], Scenario],
    prefix: Sequence[str] = (),
    *,
    sleep: Optional[Dict[str, Optional[Footprint]]] = None,
    max_steps: int = 2000,
    chooser: Optional[Callable[[int, Tuple[str, ...]], str]] = None,
) -> ScheduleResult:
    """Execute one schedule of a fresh scenario.

    ``prefix`` forces the first scheduling choices (exact replay of a
    previously observed schedule); past the prefix the driver picks the
    alphabetically first runnable task, or defers to ``chooser`` for
    every step when one is given. ``sleep`` is the sleep set installed
    at the branch node (DPOR internals — leave unset for replay).
    """
    run = SchedulerRun()
    scenario = factory(run)
    if not scenario.tasks:
        raise ScheduleError("scenario defines no tasks")
    for name, fn in scenario.tasks.items():
        run.add_task(name, fn)
    return run._execute(
        scenario, tuple(prefix), dict(sleep or {}), max_steps, chooser
    )


def explore(
    factory: Callable[[SchedulerRun], Scenario],
    *,
    mode: str = "exhaustive",
    max_schedules: int = 1000,
    max_steps: int = 2000,
    seed: int = 0,
) -> ExplorationResult:
    """Systematically enumerate interleavings of a scenario.

    Runs fresh scenario instances (one per schedule, via ``factory``)
    until the choice tree is exhausted or ``max_schedules`` executed.
    Deterministic for a fixed ``(mode, max_schedules, max_steps, seed)``
    as long as the factory builds a deterministic scenario.
    """
    outcome = ExplorationResult(mode=mode)
    if mode == "random":
        rng = random.Random(seed)

        def chooser(step: int, names: Tuple[str, ...]) -> str:
            return rng.choice(names)

        for _ in range(max_schedules):
            outcome.results.append(run_schedule(
                factory, max_steps=max_steps, chooser=chooser,
            ))
        return outcome
    if mode not in ("exhaustive", "pruned"):
        raise ScheduleError(f"unknown exploration mode {mode!r}")
    pruned = mode == "pruned"
    stack: List[Tuple[Tuple[str, ...], Dict[str, Optional[Footprint]]]]
    stack = [((), {})]
    while stack and len(outcome.results) < max_schedules:
        prefix, branch_sleep = stack.pop()
        result = run_schedule(
            factory, prefix, sleep=branch_sleep, max_steps=max_steps,
        )
        outcome.results.append(result)
        branches: List[
            Tuple[Tuple[str, ...], Dict[str, Optional[Footprint]]]
        ] = []
        for i in range(len(prefix), len(result.steps)):
            step = result.steps[i]
            node_sleep = dict(step.sleeping)
            for alt in step.runnable:
                if alt == step.chosen:
                    continue
                new_sleep: Dict[str, Optional[Footprint]] = {}
                if pruned:
                    new_sleep = dict(node_sleep)
                    new_sleep[step.chosen] = step.footprint
                branches.append((result.schedule[:i] + (alt,), new_sleep))
        stack.extend(reversed(branches))
    return outcome


# -- canned scenarios ------------------------------------------------------


def embedder_scenario(
    run: SchedulerRun,
    *,
    capacity: int = 64,
    value_bits: int = 8,
    seed: int = 3,
) -> Scenario:
    """Insert / lookup / reconstruct racing over one small embedder.

    The canonical ``--explore`` scenario: three keys are pre-loaded,
    then an insert, a lock-free lookup and a full reconstruction race.
    The end-of-schedule check asserts the XOR invariant and that every
    cooperative lock unwound (:meth:`SchedulerRun.assert_locks_quiescent`).
    Lookup *values* are deliberately not asserted — a lookup racing an
    insert may observe a partially applied path, the documented benign
    race (§IV-B).
    """
    embedder = ConcurrentVisionEmbedder(capacity, value_bits, seed=seed)
    for i in range(3):
        embedder.insert(i + 1, i + 5)
    embedder.instrument_sync(
        mutex=CooperativeMutex(run),
        gate=CooperativeRWLock(run),
        table=YieldingValueTable(run, embedder._table),
    )

    def check() -> None:
        embedder.check_invariants()
        run.assert_locks_quiescent()

    return Scenario(
        tasks={
            "insert": lambda: embedder.insert(99, 11),
            "lookup": lambda: embedder.lookup(1),
            "reconstruct": lambda: embedder.reconstruct(),
        },
        check=check,
    )


def gate_bypass_scenario(
    run: SchedulerRun,
    *,
    broken: bool = False,
    capacity: int = 64,
    value_bits: int = 8,
    seed: int = 3,
) -> Scenario:
    """Lookup racing a reconstruction — the gate's whole job.

    With the real (cooperative) gate every schedule must observe the
    stored value: reconstruction holds the write side for the entire
    rebuild. With ``broken=True`` the gate is replaced by
    :class:`NoopRWLock` and the explorer provably finds the bad
    interleaving — a lookup reading the table mid-``clear()`` sees a
    torn value and the end-of-schedule check fails.
    """
    embedder = ConcurrentVisionEmbedder(capacity, value_bits, seed=seed)
    for i in range(3):
        embedder.insert(i + 1, i + 5)
    gate: RWLock = (NoopRWLock(run) if broken
                    else CooperativeRWLock(run))
    embedder.instrument_sync(
        mutex=CooperativeMutex(run),
        gate=gate,
        table=YieldingValueTable(run, embedder._table),
    )
    observed: List[int] = []

    def check() -> None:
        embedder.check_invariants()
        run.assert_locks_quiescent()
        if observed != [5]:
            raise ScheduleError(
                f"lookup observed torn value(s) {observed} "
                "(expected [5]) — the rebuild gate failed to exclude it"
            )

    return Scenario(
        tasks={
            "lookup": lambda: observed.append(embedder.lookup(1)),
            "reconstruct": lambda: embedder.reconstruct(),
        },
        check=check,
    )
