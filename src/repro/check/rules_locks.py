"""R3 — RWLock discipline.

The concurrency layer (``repro.core.concurrent``) stays deadlock-free by
construction: every acquisition goes through the ``with lock.read():`` /
``with lock.write():`` context managers (so no code path can leak a held
lock past an exception), and any future fine-grained scheme that takes
several per-cell locks must take them in sorted cell order (the classic
total-order argument — two updaters whose paths overlap cannot wait on
each other cyclically).

- R301: a raw ``acquire_read``/``release_read``/``acquire_write``/
  ``release_write`` call anywhere outside the lock class's own body (the
  context-manager helpers are *inside* ``RWLock``, which is the entire
  allowlist).
- R302: a loop that acquires subscripted locks (``locks[i]``) must
  iterate over ``sorted(...)`` — anything else cannot guarantee the
  global acquisition order.

The dynamic counterpart used by the concurrency tests lives in
:mod:`repro.check.lockset`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = ["check_raw_lock_calls", "check_sorted_multi_lock"]


@register
def check_raw_lock_calls(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R301: raw acquire/release outside the lock implementation."""
    for node in ast.walk(checked.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in config.raw_lock_methods):
            continue
        enclosing = checked.enclosing_classes(node)
        if any(name in config.lock_owner_classes for name in enclosing):
            continue  # the lock's own context-manager helpers
        yield checked.violation(
            "R301", node,
            f"raw {node.func.attr}() call — use the context-manager "
            "helpers (with lock.read(): / with lock.write():) so the "
            "lock cannot leak past an exception",
        )


def _acquires_subscripted_lock(statement: ast.stmt) -> Optional[ast.With]:
    """The first ``with locks[...]...read()/write()`` under ``statement``."""
    for node in ast.walk(statement):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if not (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in ("read", "write")):
                continue
            receiver = expr.func.value
            if isinstance(receiver, ast.Subscript):
                return node
    return None


def _is_sorted_iterable(iterable: ast.expr) -> bool:
    return (isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "sorted")


@register
def check_sorted_multi_lock(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R302: multi-lock acquisition loops must iterate in sorted order."""
    for node in ast.walk(checked.tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        acquisition = _acquires_subscripted_lock(node)
        if acquisition is None:
            continue
        if _is_sorted_iterable(node.iter):
            continue
        yield checked.violation(
            "R302", acquisition,
            "loop acquires per-cell locks but does not iterate over "
            "sorted(...) — unordered multi-lock acquisition can deadlock",
        )
