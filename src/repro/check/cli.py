"""Command-line entry point: ``python -m repro.check``.

Besides the static rules, ``--races`` runs the vector-clock race
detector over a canned concurrent workload and ``--explore`` runs the
deterministic schedule explorer over the canned scenarios — the dynamic
halves of the concurrency toolchain (docs/static_analysis.md, "Race
detector & schedule explorer").

Exit codes: 0 — clean (possibly via justified suppressions/baseline);
1 — violations, stale baseline entries, unjustified baseline entries,
real races, or failing schedules; 2 — usage errors (unknown path,
malformed baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.check.baseline import load_baseline, write_baseline
from repro.check.engine import CheckConfig, check_paths
from repro.check.violations import RULE_CATALOGUE, Violation

__all__ = ["main"]

_DEFAULT_BASELINE = "check_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Project-specific static analysis: value-table write "
            "encapsulation (R1), hot-path purity (R2), lock discipline "
            "(R3), general hygiene (R4), interprocedural effects (R5), "
            "asyncio discipline (R6), and array aliasing/dtype contracts "
            "(R7). See docs/static_analysis.md."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(
            "baseline (ratchet) file; default: use "
            f"{_DEFAULT_BASELINE} when it exists"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report the full debt)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "write the current violations to the baseline file and exit; "
            "every entry still needs a hand-written justification note"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--races", action="store_true",
        help=(
            "also run the vector-clock race detector over a canned "
            "concurrent insert/lookup workload (exit 1 on real races; "
            "the documented benign race is reported separately)"
        ),
    )
    parser.add_argument(
        "--explore", action="store_true",
        help=(
            "also run the deterministic schedule explorer over the "
            "canned concurrency scenarios (exit 1 on failing schedules)"
        ),
    )
    parser.add_argument(
        "--async-rules", action="store_true",
        help=(
            "add an 'async_rules' report section with the R6xx analysis "
            "coverage (async functions in scope, blocking sites seen, "
            "task spawn sites); the rules themselves always run"
        ),
    )
    parser.add_argument(
        "--arrays", action="store_true",
        help=(
            "add an 'arrays' report section with the R7xx analysis "
            "coverage (dtype contracts, storage reads, hotpath "
            "functions); the rules themselves always run"
        ),
    )
    parser.add_argument(
        "--exceptions", action="store_true",
        help=(
            "add an 'exceptions' report section with the R80x "
            "exception-contract coverage (declared contracts, raise "
            "sites, escape sets, wire-escapable exceptions); the rules "
            "themselves always run"
        ),
    )
    parser.add_argument(
        "--resources", action="store_true",
        help=(
            "add a 'resources' report section with the R804/R805 "
            "lifecycle coverage (factory sites, with-managed "
            "acquisitions, closer calls); the rules themselves always "
            "run"
        ),
    )
    parser.add_argument(
        "--inject", action="store_true",
        help=(
            "run the deterministic fault-injection sweep over the "
            "canned atomic operations (exit 1 if any injected site "
            "leaves the table torn or inconsistent)"
        ),
    )
    parser.add_argument(
        "--max-sites", type=int, default=200, metavar="N",
        help=(
            "injection budget per fault case, spread evenly over the "
            "happy path (default 200; 0 = every traced site)"
        ),
    )
    parser.add_argument(
        "--inject-site", metavar="CASE:FILE:LINE#OCC", default=None,
        help=(
            "replay exactly one injection, e.g. "
            "'insert_batch-scalar:repro/core/update.py:123#0' "
            "(implies --inject)"
        ),
    )
    parser.add_argument(
        "--inject-report", metavar="FILE", default=None,
        help="write the repro-faultinject/1 JSON report to FILE",
    )
    parser.add_argument(
        "--explore-mode", choices=("exhaustive", "pruned", "random"),
        default="exhaustive",
        help="schedule enumeration strategy (default exhaustive)",
    )
    parser.add_argument(
        "--max-schedules", type=int, default=150, metavar="N",
        help="schedule budget per explored scenario (default 150)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for --explore-mode random (default 0)",
    )
    return parser


def _run_races() -> Dict[str, Any]:
    """Race-check a canned concurrent workload; returns a JSON section."""
    import threading

    from repro.check.vectorclock import (
        RaceDetector,
        TracedThread,
        instrument_concurrent,
    )
    from repro.core.concurrent import ConcurrentVisionEmbedder

    detector = RaceDetector()
    embedder = ConcurrentVisionEmbedder(512, 8, seed=3)
    for i in range(64):
        embedder.insert(i + 1, (i * 7) % 256)
    instrument_concurrent(embedder, detector)
    barrier = threading.Barrier(3)

    def writer() -> None:
        barrier.wait()
        for i in range(64):
            embedder.update(i + 1, (i * 11) % 256)

    def reader() -> None:
        barrier.wait()
        for i in range(512):
            embedder.lookup(i % 64 + 1)

    threads = [
        TracedThread(detector, writer, name="writer"),
        TracedThread(detector, reader, name="reader"),
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    for thread in threads:
        thread.join()
    section: Dict[str, Any] = dict(detector.summary())
    section["race_reports"] = [
        record.describe() for record in detector.races[:5]
    ]
    return section


def _run_explore(
    mode: str, max_schedules: int, seed: int
) -> Dict[str, Any]:
    """Explore the canned scenarios; returns a JSON section."""
    from repro.check.scheduler import (
        embedder_scenario,
        explore,
        gate_bypass_scenario,
    )

    scenarios = {
        "insert-lookup-reconstruct": embedder_scenario,
        "gate-exclusion": gate_bypass_scenario,
    }
    section: Dict[str, Any] = {"mode": mode, "scenarios": {}}
    failures: List[str] = []
    for name, factory in scenarios.items():
        outcome = explore(
            factory, mode=mode, max_schedules=max_schedules, seed=seed,
        )
        section["scenarios"][name] = outcome.summary()
        failures.extend(
            f"{name}: schedule {list(result.schedule)}: {result.error}"
            for result in outcome.failures[:5]
        )
    section["failure_reports"] = failures
    return section


def _run_inject(
    max_sites: int, site_spec: Optional[str], report_path: Optional[str]
) -> Dict[str, Any]:
    """Fault-injection sweep (or one replayed site); a JSON section."""
    from repro.check import faultinject

    if site_spec is not None:
        case_name, _, site_id = site_spec.partition(":")
        outcomes = [faultinject.replay_site(case_name, site_id)]
    else:
        outcomes = faultinject.run_sweep(max_sites=max_sites)
    section = faultinject.report_json(outcomes)
    if report_path is not None:
        Path(report_path).write_text(
            json.dumps(section, indent=2), encoding="utf-8"
        )
    return section


def _render_text(violations: List[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    lines.append(
        f"{len(violations)} violation(s) in "
        f"{len({v.path for v in violations})} file(s)"
    )
    return "\n".join(lines)


def _render_json(
    violations: List[Violation],
    stale: int,
    sections: Optional[Dict[str, Any]] = None,
) -> str:
    payload: Dict[str, Any] = {
        "format": "repro-check/1",
        "count": len(violations),
        "stale_baseline_entries": stale,
        "violations": [v.to_dict() for v in violations],
    }
    payload.update(sections or {})
    return json.dumps(payload, indent=2)


def main(argv: Optional[List[str]] = None) -> int:
    """Run the checker; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULE_CATALOGUE.items()):
            print(f"{rule}  {description}")
        return 0

    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    config = CheckConfig()
    violations = check_paths(paths, config)

    baseline_path = Path(args.baseline or _DEFAULT_BASELINE)
    if args.write_baseline:
        count = write_baseline(baseline_path, violations)
        print(
            f"wrote {count} entr{'y' if count == 1 else 'ies'} to "
            f"{baseline_path} — add a justification note to each before "
            "committing"
        )
        return 0

    stale_count = 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        unjustified = baseline.unjustified()
        if unjustified:
            for entry in unjustified:
                print(
                    f"{baseline_path}: entry {entry.fingerprint} "
                    f"({entry.rule} in {entry.path}) has no justification "
                    "note",
                    file=sys.stderr,
                )
            return 1
        violations, _, stale = baseline.apply(violations)
        stale_count = len(stale)
        for entry in stale:
            print(
                f"{baseline_path}: stale entry {entry.fingerprint} "
                f"({entry.rule} in {entry.path}) no longer matches — "
                "delete it (the ratchet only tightens)",
                file=sys.stderr,
            )

    sections: Dict[str, Any] = {}
    dynamic_failures = 0
    if args.async_rules or args.arrays or args.exceptions or args.resources:
        from repro.check.engine import iter_python_files, module_relpath

        sources = {
            module_relpath(path): path.read_text(encoding="utf-8")
            for path in iter_python_files(paths, config)
        }
        if args.async_rules:
            from repro.check import rules_async

            section = rules_async.analysis_summary(sources, config)
            section["violations"] = sum(
                1 for v in violations if v.rule.startswith("R6")
            )
            sections["async_rules"] = section
        if args.arrays:
            from repro.check import rules_arrays

            section = rules_arrays.analysis_summary(sources, config)
            section["violations"] = sum(
                1 for v in violations if v.rule.startswith("R7")
            )
            sections["arrays"] = section
        if args.exceptions:
            from repro.check import rules_exceptions

            section = rules_exceptions.analysis_summary(sources, config)
            section["violations"] = sum(
                1 for v in violations
                if v.rule in ("R801", "R802", "R803")
            )
            sections["exceptions"] = section
        if args.resources:
            from repro.check import rules_resources

            section = rules_resources.analysis_summary(sources, config)
            section["violations"] = sum(
                1 for v in violations if v.rule in ("R804", "R805")
            )
            sections["resources"] = section
    if args.inject or args.inject_site:
        injected = _run_inject(
            args.max_sites, args.inject_site, args.inject_report
        )
        sections["faultinject"] = injected
        dynamic_failures += int(injected["failures"])
    if args.races:
        races = _run_races()
        sections["races"] = races
        dynamic_failures += int(races["races"])
    if args.explore:
        explored = _run_explore(
            args.explore_mode, args.max_schedules, args.seed
        )
        sections["explore"] = explored
        dynamic_failures += sum(
            scenario["failures"]
            for scenario in explored["scenarios"].values()
        )

    if args.format == "json":
        print(_render_json(violations, stale_count, sections))
    else:
        if violations:
            print(_render_text(violations))
        if "async_rules" in sections:
            async_section = sections["async_rules"]
            print(
                f"async: {async_section['async_functions']} async def(s) "
                f"in scope {','.join(async_section['scope'])}, "
                f"{async_section['blocking_sites']} blocking site(s) seen, "
                f"{async_section['blocking_reachable_async']} reachable "
                f"from async, {async_section['task_spawn_sites']} task "
                f"spawn site(s), {async_section['violations']} R6xx "
                "violation(s)"
            )
        if "arrays" in sections:
            arrays_section = sections["arrays"]
            print(
                f"arrays: {arrays_section['files_scanned']} file(s), "
                f"{arrays_section['dtype_contracts']} dtype contract(s) "
                f"({arrays_section['dtype_literals_checked']} literal(s) "
                f"checked), {arrays_section['storage_reads']} plane-"
                f"storage read(s), {arrays_section['violations']} R7xx "
                "violation(s)"
            )
        if "exceptions" in sections:
            exc_section = sections["exceptions"]
            print(
                f"exceptions: {exc_section['public_contract_functions']} "
                f"public contract function(s), "
                f"{exc_section['declared_contracts']} declared contract(s), "
                f"{exc_section['atomic_functions']} atomic function(s), "
                f"{exc_section['raise_sites']} raise site(s), "
                f"{exc_section['escaping_functions']} escaping, "
                f"{exc_section['violations']} R80x violation(s)"
            )
        if "resources" in sections:
            res_section = sections["resources"]
            print(
                f"resources: {res_section['files_scanned']} file(s), "
                f"{res_section['resource_factory_sites']} factory site(s) "
                f"({res_section['with_managed']} with-managed), "
                f"{res_section['closer_calls']} closer call(s), "
                f"{res_section['corruption_catching_handlers']} corruption-"
                f"catching handler(s), {res_section['violations']} "
                "R804/R805 violation(s)"
            )
        if "faultinject" in sections:
            inject_section = sections["faultinject"]
            print(
                f"faultinject: {inject_section['total_sites']} injected "
                f"site(s) over {len(inject_section['cases'])} case(s), "
                f"{inject_section['failures']} failing"
            )
            for report in inject_section["failure_reports"][:5]:
                print(
                    f"  {report['case']} @ {report['site']}: "
                    f"injected {report['injected']}, raised "
                    f"{report['raised'] or 'nothing'}, state "
                    f"{report['state']}, consistent={report['consistent']}"
                )
        if "races" in sections:
            races = sections["races"]
            print(
                f"races: {races['races']} real, {races['benign']} benign "
                f"(allowlisted), {races['threads']} thread(s), "
                f"{races['locations']} location(s)"
            )
            for report in races["race_reports"]:
                print(report)
        if "explore" in sections:
            explored = sections["explore"]
            for name, summary in explored["scenarios"].items():
                print(
                    f"explore[{name}]: {summary['schedules']} schedule(s) "
                    f"({summary['distinct']} distinct, mode "
                    f"{summary['mode']}), {summary['failures']} failing, "
                    f"{summary['deadlocks']} deadlock(s)"
                )
            for report in explored["failure_reports"]:
                print(report)
        if not violations and not dynamic_failures:
            print("repro.check: clean")
    return 1 if (violations or stale_count or dynamic_failures) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
