"""Command-line entry point: ``python -m repro.check``.

Exit codes: 0 — clean (possibly via justified suppressions/baseline);
1 — violations, stale baseline entries, or unjustified baseline entries;
2 — usage errors (unknown path, malformed baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.check.baseline import load_baseline, write_baseline
from repro.check.engine import CheckConfig, check_paths
from repro.check.violations import RULE_CATALOGUE, Violation

__all__ = ["main"]

_DEFAULT_BASELINE = "check_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Project-specific static analysis: value-table write "
            "encapsulation (R1), hot-path purity (R2), lock discipline "
            "(R3), and general hygiene (R4). See docs/static_analysis.md."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=(
            "baseline (ratchet) file; default: use "
            f"{_DEFAULT_BASELINE} when it exists"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report the full debt)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "write the current violations to the baseline file and exit; "
            "every entry still needs a hand-written justification note"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _render_text(violations: List[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    lines.append(
        f"{len(violations)} violation(s) in "
        f"{len({v.path for v in violations})} file(s)"
    )
    return "\n".join(lines)


def _render_json(violations: List[Violation], stale: int) -> str:
    return json.dumps(
        {
            "format": "repro-check/1",
            "count": len(violations),
            "stale_baseline_entries": stale,
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Run the checker; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULE_CATALOGUE.items()):
            print(f"{rule}  {description}")
        return 0

    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    config = CheckConfig()
    violations = check_paths(paths, config)

    baseline_path = Path(args.baseline or _DEFAULT_BASELINE)
    if args.write_baseline:
        count = write_baseline(baseline_path, violations)
        print(
            f"wrote {count} entr{'y' if count == 1 else 'ies'} to "
            f"{baseline_path} — add a justification note to each before "
            "committing"
        )
        return 0

    stale_count = 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        unjustified = baseline.unjustified()
        if unjustified:
            for entry in unjustified:
                print(
                    f"{baseline_path}: entry {entry.fingerprint} "
                    f"({entry.rule} in {entry.path}) has no justification "
                    "note",
                    file=sys.stderr,
                )
            return 1
        violations, _, stale = baseline.apply(violations)
        stale_count = len(stale)
        for entry in stale:
            print(
                f"{baseline_path}: stale entry {entry.fingerprint} "
                f"({entry.rule} in {entry.path}) no longer matches — "
                "delete it (the ratchet only tightens)",
                file=sys.stderr,
            )

    if args.format == "json":
        print(_render_json(violations, stale_count))
    elif violations:
        print(_render_text(violations))
    else:
        print("repro.check: clean")
    return 1 if (violations or stale_count) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
