"""Happens-before race detection for the concurrent update path.

:class:`LocksetRWLock` catches lock-API *misuse*; this module catches the
complementary failure — conflicting value-table accesses with **no**
happens-before ordering between them, even when every lock call is
individually well-formed. It is a dynamic vector-clock detector in the
FastTrack style:

- every thread carries a vector clock, advanced on lock releases;
- each lock carries release clocks that acquirers join — with
  reader/writer awareness: a read release only synchronises with later
  *write* acquirers (two readers under the same ``RWLock`` are
  deliberately unordered);
- each value-table location keeps its last write and the reads since,
  as ``(thread, epoch)`` pairs; an access whose epoch is not covered by
  the current thread's clock is a race, reported with both stack traces.

The detector wraps the real structures rather than patching them:
:class:`ClockedMutex` around the update mutex, :class:`ClockedRWLock` as
a drop-in rebuild gate, and :class:`ClockedValueTable` around the value
table (whole-table operations use a sentinel location that conflicts
with every cell). :func:`instrument_concurrent` wires all three into a
:class:`~repro.core.concurrent.ConcurrentVisionEmbedder` through its
``instrument_sync`` seam.

The paper's §IV-B documents exactly one benign race: a lock-free lookup
may observe a partially applied modification path (every cell of the
path is XORed by one fixed ``V_delta``, so the lookup sees either the
old value, the new value, or a transient — the data plane tolerates all
three). That race is an explicit allowlist entry (:data:`BENIGN_RACES`),
reported separately rather than silently ignored; everything else is
real. See docs/static_analysis.md ("Race detector & schedule explorer").
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.concurrent import RWLock
from repro.core.value_table import Cell

__all__ = [
    "VectorClock",
    "Access",
    "RaceRecord",
    "BenignRace",
    "BENIGN_RACES",
    "RaceDetector",
    "ClockedMutex",
    "ClockedRWLock",
    "ClockedValueTable",
    "TracedThread",
    "instrument_concurrent",
]

#: sentinel location for whole-table operations (``clear``/``load_dense``/
#: ``lookup_batch``/...) — conflicts with every cell location.
WHOLE_TABLE: str = "<whole-table>"

#: stack frames kept per recorded access (enough to show the caller chain
#: through the embedder into the table without drowning the report).
_STACK_LIMIT = 14


class VectorClock:
    """A mapping ``thread-id -> logical time`` with join/increment."""

    __slots__ = ("_times",)

    def __init__(self, times: Optional[Dict[int, int]] = None) -> None:
        self._times: Dict[int, int] = dict(times) if times else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._times)

    def time_of(self, tid: int) -> int:
        return self._times.get(tid, 0)

    def increment(self, tid: int) -> None:
        self._times[tid] = self._times.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, time in other._times.items():
            if time > self._times.get(tid, 0):
                self._times[tid] = time

    def covers(self, tid: int, epoch: int) -> bool:
        """True if this clock has seen thread ``tid`` up to ``epoch``."""
        return self._times.get(tid, 0) >= epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inside = ", ".join(f"T{t}:{c}" for t, c in sorted(self._times.items()))
        return f"VectorClock({inside})"


@dataclass(frozen=True)
class Access:
    """One recorded table access: who, when (epoch), what, and where."""

    tid: int
    epoch: int
    op: str
    location: Hashable
    stack: Tuple[str, ...]

    def describe(self) -> str:
        frames = "".join(self.stack) or "  <no stack captured>\n"
        return (
            f"thread {self.tid} {self.op}() at {self.location!r} "
            f"(epoch {self.epoch}):\n{frames}"
        )


@dataclass(frozen=True)
class BenignRace:
    """One allowlisted unordered access pair, with its justification."""

    reader_ops: frozenset
    writer_ops: frozenset
    why: str

    def matches(self, first: Access, second: Access) -> bool:
        reader, writer = (
            (first, second) if second.op in self.writer_ops
            else (second, first)
        )
        return (reader.op in self.reader_ops
                and writer.op in self.writer_ops)


#: the explicit allowlist. Exactly the paper's documented benign race:
#: lock-free lookups (``get``/``xor_sum``/``lookup_batch``/``to_dense``)
#: racing a deferred-path application (``xor``). Whole-table rewrites
#: (``clear``/``load_dense``/``set``/``fill``) are NOT allowlisted — those
#: must be ordered by the rebuild gate, and an unordered one is a bug.
BENIGN_RACES: Tuple[BenignRace, ...] = (
    BenignRace(
        reader_ops=frozenset({"get", "xor_sum", "lookup_batch", "to_dense"}),
        writer_ops=frozenset({"xor"}),
        why=(
            "§IV-B: a lock-free lookup may observe a partially applied "
            "modification path; every path cell is XORed by the same fixed "
            "V_delta, and the data plane tolerates the transient"
        ),
    ),
)


@dataclass(frozen=True)
class RaceRecord:
    """Two unordered conflicting accesses (with both stacks)."""

    first: Access
    second: Access
    benign: bool
    why: str = ""

    def describe(self) -> str:
        kind = "benign (allowlisted)" if self.benign else "RACE"
        header = f"{kind}: unordered {self.first.op}/{self.second.op} at " \
                 f"{self.second.location!r}"
        body = f"--- earlier access ---\n{self.first.describe()}" \
               f"--- later access ---\n{self.second.describe()}"
        note = f"allowlist: {self.why}\n" if self.benign and self.why else ""
        return f"{header}\n{note}{body}"


class _LockState:
    """Release clocks of one lock, reader/writer aware."""

    __slots__ = ("write_release", "read_release")

    def __init__(self) -> None:
        # Joined by every acquirer: writes must be visible to everyone.
        self.write_release = VectorClock()
        # Joined only by write acquirers: two readers stay unordered.
        self.read_release = VectorClock()


class _LocationState:
    """Last write plus reads-since-last-write for one location."""

    __slots__ = ("last_write", "reads")

    def __init__(self) -> None:
        self.last_write: Optional[Access] = None
        # One entry per thread (the newest read supersedes older ones
        # from the same thread — bounded memory, FastTrack-style).
        self.reads: Dict[int, Access] = {}


class RaceDetector:
    """Vector-clock happens-before detector over the table surface.

    All public methods are thread-safe (one internal mutex; it is part of
    the *detector*, not the modelled program, so it creates no
    happens-before edges in the analysis).
    """

    def __init__(self, capture_stacks: bool = True) -> None:
        self._mutex = threading.Lock()
        self._clocks: Dict[int, VectorClock] = {}
        self._locks: Dict[int, _LockState] = {}
        self._locations: Dict[Hashable, _LocationState] = {}
        self._capture_stacks = capture_stacks
        self._local = threading.local()
        self._next_tid = 0
        self.races: List[RaceRecord] = []
        self.benign: List[RaceRecord] = []

    # -- thread bookkeeping -------------------------------------------

    def _tid(self) -> int:
        """Stable logical id for the calling thread.

        The OS recycles ``threading.get_ident()`` values as soon as a
        thread exits, so a later thread could silently inherit a dead
        thread's clock and appear program-ordered after it — hiding real
        races. Each distinct thread therefore gets a fresh detector-local
        id on first contact, held in a thread-local (which dies with the
        thread and so is never recycled).
        """
        tid: Optional[int] = getattr(self._local, "tid", None)
        if tid is None:
            with self._mutex:
                tid = self._next_tid
                self._next_tid += 1
            self._local.tid = tid
        return tid

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock()
            clock.increment(tid)
            self._clocks[tid] = clock
        return clock

    def fork(self) -> VectorClock:
        """Snapshot the calling thread's clock for a child to inherit."""
        tid = self._tid()
        with self._mutex:
            clock = self._clock(tid)
            snapshot = clock.copy()
            clock.increment(tid)
        return snapshot

    def begin_thread(self, inherited: VectorClock) -> None:
        """Adopt a parent snapshot as the calling thread's start clock."""
        tid = self._tid()
        with self._mutex:
            clock = self._clock(tid)
            clock.join(inherited)

    def end_thread(self) -> VectorClock:
        """Snapshot the calling thread's final clock (for joiners)."""
        tid = self._tid()
        with self._mutex:
            return self._clock(tid).copy()

    def join_thread(self, final: VectorClock) -> None:
        """Join a finished thread's final clock into the caller's."""
        tid = self._tid()
        with self._mutex:
            self._clock(tid).join(final)

    # -- lock events ---------------------------------------------------

    def _lock_state(self, lock_id: int) -> _LockState:
        state = self._locks.get(lock_id)
        if state is None:
            state = _LockState()
            self._locks[lock_id] = state
        return state

    def acquire(self, lock_id: int) -> None:
        """Exclusive acquire: joins both release clocks."""
        tid = self._tid()
        with self._mutex:
            state = self._lock_state(lock_id)
            clock = self._clock(tid)
            clock.join(state.write_release)
            clock.join(state.read_release)

    def release(self, lock_id: int) -> None:
        """Exclusive release: publishes to the write-release clock."""
        tid = self._tid()
        with self._mutex:
            state = self._lock_state(lock_id)
            clock = self._clock(tid)
            state.write_release.join(clock)
            clock.increment(tid)

    def acquire_shared(self, lock_id: int) -> None:
        """Shared acquire: sees prior writers, not fellow readers."""
        tid = self._tid()
        with self._mutex:
            self._clock(tid).join(self._lock_state(lock_id).write_release)

    def release_shared(self, lock_id: int) -> None:
        """Shared release: publishes only to future *write* acquirers."""
        tid = self._tid()
        with self._mutex:
            state = self._lock_state(lock_id)
            clock = self._clock(tid)
            state.read_release.join(clock)
            clock.increment(tid)

    # -- access events -------------------------------------------------

    def _access(self, tid: int, op: str, location: Hashable) -> Access:
        stack: Tuple[str, ...] = ()
        if self._capture_stacks:
            stack = tuple(traceback.format_list(
                traceback.extract_stack(limit=_STACK_LIMIT)[:-3]
            ))
        return Access(
            tid=tid, epoch=self._clock(tid).time_of(tid),
            op=op, location=location, stack=stack,
        )

    def _report(self, first: Access, second: Access) -> None:
        for entry in BENIGN_RACES:
            if entry.matches(first, second):
                self.benign.append(RaceRecord(
                    first=first, second=second, benign=True, why=entry.why,
                ))
                return
        self.races.append(RaceRecord(
            first=first, second=second, benign=False,
        ))

    def _state_for(self, location: Hashable) -> _LocationState:
        state = self._locations.get(location)
        if state is None:
            state = _LocationState()
            self._locations[location] = state
        return state

    def _conflicting_states(
        self, location: Hashable
    ) -> List[_LocationState]:
        """The location's own state plus everything it overlaps."""
        if location == WHOLE_TABLE:
            states = [self._state_for(WHOLE_TABLE)]
            states.extend(
                state for loc, state in self._locations.items()
                if loc != WHOLE_TABLE
            )
            return states
        return [self._state_for(location), self._state_for(WHOLE_TABLE)]

    def record_read(self, location: Hashable, op: str) -> None:
        tid = self._tid()
        with self._mutex:
            clock = self._clock(tid)
            access = self._access(tid, op, location)
            for state in self._conflicting_states(location):
                write = state.last_write
                if (write is not None and write.tid != tid
                        and not clock.covers(write.tid, write.epoch)):
                    self._report(write, access)
            self._state_for(location).reads[tid] = access

    def record_write(self, location: Hashable, op: str) -> None:
        tid = self._tid()
        with self._mutex:
            clock = self._clock(tid)
            access = self._access(tid, op, location)
            overlapping = self._conflicting_states(location)
            for state in overlapping:
                write = state.last_write
                if (write is not None and write.tid != tid
                        and not clock.covers(write.tid, write.epoch)):
                    self._report(write, access)
                for read in state.reads.values():
                    if (read.tid != tid
                            and not clock.covers(read.tid, read.epoch)):
                        self._report(read, access)
            if location == WHOLE_TABLE:
                # The whole-table write supersedes every per-cell state.
                self._locations = {WHOLE_TABLE: self._locations[WHOLE_TABLE]}
            state = self._state_for(location)
            state.last_write = access
            state.reads = {}

    # -- reporting -----------------------------------------------------

    def assert_race_free(self) -> None:
        """Raise ``AssertionError`` describing every non-benign race."""
        if self.races:
            reports = "\n\n".join(r.describe() for r in self.races)
            raise AssertionError(
                f"{len(self.races)} unordered conflicting access(es):\n"
                f"{reports}"
            )

    def summary(self) -> Dict[str, int]:
        return {
            "races": len(self.races),
            "benign": len(self.benign),
            "threads": len(self._clocks),
            "locations": len(self._locations),
        }


class ClockedMutex:
    """Context-manager wrapper adding detector events to a real mutex.

    Reentrant (the update mutex is an ``RLock``: ``insert`` may reach
    ``reconstruct``); only the outermost enter/exit emits detector
    events, matching the lock's actual ordering semantics.
    """

    def __init__(self, detector: RaceDetector, inner: Any) -> None:
        self._detector = detector
        self._inner = inner
        self._depths: Dict[int, int] = {}

    def __enter__(self) -> "ClockedMutex":
        self._inner.__enter__()
        tid = threading.get_ident()
        depth = self._depths.get(tid, 0)
        self._depths[tid] = depth + 1
        if depth == 0:
            self._detector.acquire(id(self))
        return self

    def __exit__(self, *exc: object) -> bool:
        tid = threading.get_ident()
        depth = self._depths[tid] - 1
        self._depths[tid] = depth
        if depth == 0:
            del self._depths[tid]
            self._detector.release(id(self))
        self._inner.__exit__(*exc)
        return False


class ClockedRWLock(RWLock):
    """Drop-in :class:`RWLock` emitting reader/writer detector events."""

    def __init__(self, detector: RaceDetector) -> None:
        super().__init__()
        self._detector = detector

    def acquire_read(self) -> None:
        super().acquire_read()
        self._detector.acquire_shared(id(self))

    def release_read(self) -> None:
        self._detector.release_shared(id(self))
        super().release_read()

    def acquire_write(self) -> None:
        super().acquire_write()
        self._detector.acquire(id(self))

    def release_write(self) -> None:
        self._detector.release(id(self))
        super().release_write()


class ClockedValueTable:
    """Proxy recording every read/write of the value-table surface.

    Per-cell operations record their ``(array, index)`` location;
    whole-table operations record the :data:`WHOLE_TABLE` sentinel, which
    conflicts with every cell. Unrecognised attributes delegate to the
    wrapped table, so the proxy is a drop-in for either
    :class:`~repro.core.value_table.ValueTable` or the packed variant.
    """

    def __init__(self, detector: RaceDetector, inner: Any) -> None:
        self._detector = detector
        self._inner = inner

    # -- reads ---------------------------------------------------------

    def get(self, cell: Cell) -> int:
        self._detector.record_read(cell, "get")
        return int(self._inner.get(cell))

    def xor_sum(self, cells: Iterable[Cell]) -> int:
        cell_list = list(cells)
        for cell in cell_list:
            self._detector.record_read(cell, "xor_sum")
        return int(self._inner.xor_sum(cell_list))

    def lookup_batch(self, index_arrays: Any) -> Any:
        self._detector.record_read(WHOLE_TABLE, "lookup_batch")
        return self._inner.lookup_batch(index_arrays)

    def to_dense(self) -> Any:
        self._detector.record_read(WHOLE_TABLE, "to_dense")
        return self._inner.to_dense()

    # -- writes --------------------------------------------------------

    def xor(self, cell: Cell, delta: int) -> None:
        self._detector.record_write(cell, "xor")
        self._inner.xor(cell, delta)

    def set(self, cell: Cell, value: int) -> None:
        self._detector.record_write(cell, "set")
        self._inner.set(cell, value)

    def load_dense(self, dense: Any) -> None:
        self._detector.record_write(WHOLE_TABLE, "load_dense")
        self._inner.load_dense(dense)

    def clear(self) -> None:
        self._detector.record_write(WHOLE_TABLE, "clear")
        self._inner.clear()

    # -- passthrough ---------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ClockedValueTable):
            other = other._inner
        return bool(self._inner == other)

    def __hash__(self) -> int:  # identity, like the wrapped tables
        return id(self)


class TracedThread(threading.Thread):
    """``threading.Thread`` with detector fork/join edges built in.

    ``start()`` snapshots the parent clock for the child to inherit;
    ``join()`` merges the child's final clock back into the joiner — so
    setup done before ``start()`` and assertions after ``join()`` are
    correctly ordered against the child's accesses.
    """

    def __init__(
        self,
        detector: RaceDetector,
        target: Callable[..., object],
        args: Tuple[Any, ...] = (),
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self._detector = detector
        self._traced_target = target
        self._traced_args = args
        self._start_snapshot: Optional[VectorClock] = None
        self._final_snapshot: Optional[VectorClock] = None

    def start(self) -> None:
        self._start_snapshot = self._detector.fork()
        super().start()

    def run(self) -> None:
        if self._start_snapshot is not None:
            self._detector.begin_thread(self._start_snapshot)
        try:
            self._traced_target(*self._traced_args)
        finally:
            self._final_snapshot = self._detector.end_thread()

    def join(self, timeout: Optional[float] = None) -> None:
        super().join(timeout)
        if not self.is_alive() and self._final_snapshot is not None:
            self._detector.join_thread(self._final_snapshot)


def instrument_concurrent(embedder: Any, detector: RaceDetector) -> Any:
    """Swap a ``ConcurrentVisionEmbedder``'s sync layer for clocked
    doubles. Call before any worker threads touch the structure; returns
    the embedder for chaining."""
    embedder.instrument_sync(
        mutex=ClockedMutex(detector, embedder._update_mutex),
        gate=ClockedRWLock(detector),
        table=ClockedValueTable(detector, embedder._table),
    )
    return embedder
