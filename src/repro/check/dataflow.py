"""Interprocedural dataflow over the checked project: who writes cells?

The R1xx rules are per-file: they see ``table.xor(...)`` and judge the
*site*. The R5xx invariant rules need more — ``self._run_update(handle)``
in ``embedder.insert`` eventually XORs value-table cells three calls
down, and whether *that* is safe depends on the exception edges between
the assistant-table registration and the cell write. This module builds
the project-wide model those rules consume:

- every top-level function and method of every checked file becomes a
  :class:`FunctionInfo` (nested ``def``\\ s — walk callbacks — are folded
  into their enclosing function, matching the R2xx convention);
- direct cell-write sites are collected per function (storage-attribute
  assignment, or a mutating call on a table-ish receiver). A site whose
  line carries a justified ``noqa[R101]``/``noqa[R5...]`` is *sanctioned*
  and does not contribute write effects — the pragma blesses the whole
  pathway, not just the line;
- call sites are resolved conservatively: plain-name calls to
  module-level functions (same file first, then project-wide),
  ``self.method()`` through the class and its bases, and
  ``<...plan>.apply()`` to the ``apply`` methods of ``*Plan`` classes.
  Arbitrary object-method calls stay unresolved — precision over recall,
  so a ``cache.clear()`` never smears write effects across the graph;
- ``writes_cells`` is propagated to a fixed point over the call edges,
  each function keeping a witness (the direct-write site it reaches) for
  the diagnostics;
- *raises* effect-sets are propagated the same way: every ``raise``
  whose exception class is nameable (``raise DuplicateKey(...)``,
  ``raise errors.KeyNotFound``, or ``raise exc`` under an
  ``except E as exc``) seeds the raising function's escape set unless an
  enclosing ``try`` inside the same function absorbs it (first matching
  handler, judged through the class hierarchy, with no bare ``raise``).
  Escapes then flow caller-ward over the resolved call edges, filtered
  at each call site by the caller's own ``try`` nesting, and each
  escaped exception keeps a *witness chain* naming the call path down to
  the original raise statement. A ``raise`` line carrying a justified
  ``noqa[R801]`` is sanctioned and contributes nothing — like the write
  sites, the pragma blesses the whole pathway.

:mod:`repro.check.rules_invariant` turns the model into R501–R503;
:mod:`repro.check.rules_exceptions` turns the escape sets into
R801–R803.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.engine import CheckConfig, CheckedFile

__all__ = [
    "BUILTIN_EXCEPTION_BASES",
    "BlockingSite",
    "CallSite",
    "FunctionInfo",
    "ProjectModel",
    "RaiseSite",
    "WriteSite",
    "build_project",
    "catches",
    "escapes_enclosing",
    "handler_names",
    "is_table_receiver",
    "receiver_text",
    "storage_attribute",
]

#: class -> direct bases for the builtin exception hierarchy (the part of
#: it the repo's code actually touches); project classes are merged in
#: from the parsed ``class`` statements by :func:`build_project`.
BUILTIN_EXCEPTION_BASES: Dict[str, List[str]] = {
    "Exception": ["BaseException"],
    "ArithmeticError": ["Exception"],
    "ZeroDivisionError": ["ArithmeticError"],
    "OverflowError": ["ArithmeticError"],
    "AssertionError": ["Exception"],
    "AttributeError": ["Exception"],
    "BufferError": ["Exception"],
    "EOFError": ["Exception"],
    "ImportError": ["Exception"],
    "ModuleNotFoundError": ["ImportError"],
    "LookupError": ["Exception"],
    "IndexError": ["LookupError"],
    "KeyError": ["LookupError"],
    "MemoryError": ["Exception"],
    "NameError": ["Exception"],
    "OSError": ["Exception"],
    "IOError": ["OSError"],
    "FileNotFoundError": ["OSError"],
    "ConnectionError": ["OSError"],
    "TimeoutError": ["OSError"],
    "RuntimeError": ["Exception"],
    "NotImplementedError": ["RuntimeError"],
    "RecursionError": ["RuntimeError"],
    "StopIteration": ["Exception"],
    "StopAsyncIteration": ["Exception"],
    "SystemError": ["Exception"],
    "TypeError": ["Exception"],
    "ValueError": ["Exception"],
    "UnicodeError": ["ValueError"],
    "KeyboardInterrupt": ["BaseException"],
    "SystemExit": ["BaseException"],
    "GeneratorExit": ["BaseException"],
}

#: exception classes *not* caught by ``except Exception`` — everything
#: else unknown is assumed Exception-derived (user classes virtually
#: always are).
_BASE_ONLY = frozenset(
    {"BaseException", "KeyboardInterrupt", "SystemExit", "GeneratorExit"}
)


def catches(raised: str, caught: str, bases: Dict[str, List[str]]) -> bool:
    """True if ``except <caught>`` catches a raised ``<raised>``."""
    if caught == "BaseException":
        return True
    if caught == "Exception" and raised not in _BASE_ONLY:
        return True
    seen: set = set()
    frontier = [raised]
    while frontier:
        name = frontier.pop()
        if name == caught:
            return True
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(bases.get(name, []))
    return False


def handler_names(handler: ast.ExceptHandler) -> List[str]:
    """The exception class names an ``except`` clause catches (a bare
    ``except:`` catches ``BaseException``)."""
    if handler.type is None:
        return ["BaseException"]
    types = (list(handler.type.elts)
             if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names: List[str] = []
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _contains_bare_raise(stmts: Iterable[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
    return False


def escapes_enclosing(
    checked: CheckedFile,
    node: ast.AST,
    exc_name: str,
    bases: Dict[str, List[str]],
) -> bool:
    """True if ``exc_name`` raised at ``node`` escapes the enclosing
    function: no enclosing ``try`` (with the site in its *body* — a
    raise inside a handler, ``else`` or ``finally`` is not caught by
    that same ``try``) has a matching handler without a bare
    ``raise``."""
    child: ast.AST = node
    parent = checked.parent(child)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return True
        if (isinstance(parent, ast.Try)
                and any(child is stmt for stmt in parent.body)):
            for handler in parent.handlers:
                if any(catches(exc_name, caught, bases)
                       for caught in handler_names(handler)):
                    if not _contains_bare_raise(handler.body):
                        return False
                    break  # re-raised: keeps propagating outward
        child, parent = parent, checked.parent(parent)
    return True

#: receivers that look like a value-table handle: a bare/dotted name whose
#: last segment is ``table``/``*_table``, or the raw storage attributes.
_TABLE_SEGMENT_RE = re.compile(r"(^|_)table$")


def receiver_text(node: ast.expr) -> Optional[str]:
    """Dotted-name text of a receiver expression, or None if not name-ish."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def is_table_receiver(text: str, config: CheckConfig) -> bool:
    """True if a dotted receiver looks like a value-table handle."""
    last = text.rsplit(".", 1)[-1]
    return bool(_TABLE_SEGMENT_RE.search(last)) or last in config.storage_attrs


def storage_attribute(
    node: ast.expr, config: CheckConfig
) -> Optional[ast.Attribute]:
    """The ``<expr>._cells`` / ``<expr>._words`` attribute inside a write
    target, unwrapping subscripts (``x._cells[i] = v``)."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if (isinstance(current, ast.Attribute)
            and current.attr in config.storage_attrs):
        return current
    return None


@dataclass
class WriteSite:
    """One direct cell-write site inside a function body."""

    node: ast.AST
    line: int
    #: ``storage-assign`` (raw ``_cells``/``_words`` target) or
    #: ``mutator-call`` (``table.xor(...)`` etc.)
    kind: str
    #: human-readable form for diagnostics (``table.xor()``)
    detail: str
    #: the line carries a justified ``noqa[R101]``/``noqa[R5...]`` — the
    #: site is sanctioned and contributes no write effect.
    sanctioned: bool


@dataclass
class BlockingSite:
    """One direct event-loop-blocking call inside a function body (R601).

    ``time.sleep``, subprocess spawns, file/socket I/O, or an un-awaited
    ``.acquire()``/``.wait()``/``.join()`` on a lock-/thread-shaped
    receiver. Collected for *every* function so the effect can propagate
    over the call graph; the R601 rule only judges ``async def``\\ s in
    the serve scope."""

    node: ast.AST
    line: int
    #: human-readable form for diagnostics (``time.sleep()``)
    detail: str
    #: the line carries a justified ``noqa[R601]`` — no effect contributed.
    sanctioned: bool


@dataclass
class RaiseSite:
    """One ``raise`` statement with a nameable exception class."""

    node: ast.Raise
    line: int
    #: the raised class name (``DuplicateKey``)
    exc_name: str
    #: the line carries a justified ``noqa[R801]`` — no effect contributed.
    sanctioned: bool


@dataclass
class CallSite:
    """One resolvable call site inside a function body."""

    node: ast.Call
    line: int
    #: resolution shape: ``name`` / ``self-method`` / ``plan-apply``
    kind: str
    #: the called function/method name (``_run_update``, ``apply``)
    name: str
    #: source-ish text for diagnostics (``self._run_update``)
    callee: str
    #: resolved targets, filled in by :func:`build_project`
    targets: List["FunctionInfo"] = field(default_factory=list)

    def writing_targets(self) -> List["FunctionInfo"]:
        return [target for target in self.targets if target.writes_cells]


@dataclass
class FunctionInfo:
    """One top-level function or method (nested defs folded in)."""

    checked: CheckedFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: Optional[str]
    writes: List[WriteSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)
    #: fixed-point result: this function (transitively) writes cells
    writes_cells: bool = False
    #: where the writes bottom out, for diagnostics
    write_witness: str = ""
    #: fixed-point result: this function (transitively) blocks the
    #: calling thread — fatal inside an event-loop callback (R601)
    blocks_loop: bool = False
    #: where the blocking bottoms out, for diagnostics
    blocking_witness: str = ""
    #: fixed-point result: exception class name -> witness chain down to
    #: the raise statement that can escape this function
    escapes: Dict[str, str] = field(default_factory=dict)

    @property
    def rel(self) -> str:
        return self.checked.rel

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")

    @property
    def key(self) -> str:
        return f"{self.rel}::{self.qualname}"

    def effective_writes(self) -> List[WriteSite]:
        """The write sites that contribute effects (not sanctioned)."""
        return [site for site in self.writes if not site.sanctioned]

    def effective_blocking(self) -> List[BlockingSite]:
        """The blocking sites that contribute effects (not sanctioned)."""
        return [site for site in self.blocking if not site.sanctioned]


class ProjectModel:
    """The interprocedural view over every checked file."""

    def __init__(
        self,
        files: Dict[str, CheckedFile],
        functions: Dict[str, FunctionInfo],
        class_bases: Dict[str, List[str]],
        exception_bases: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        self.files = files
        self.functions = functions
        self.class_bases = class_bases
        #: builtin exception hierarchy merged with the project's parsed
        #: class statements — what :func:`catches` resolves against.
        self.exception_bases = (
            exception_bases if exception_bases is not None
            else dict(BUILTIN_EXCEPTION_BASES)
        )

    def functions_in(self, rel: str) -> List[FunctionInfo]:
        return [info for info in self.functions.values()
                if info.rel == rel]


def _site_sanctioned(checked: CheckedFile, line: int) -> bool:
    # Consuming on purpose: sanctioning a write site is the pragma doing
    # its job (it stops the effect propagating to every caller), so it
    # must count as used even when the local rule never fires — R003
    # would otherwise demand the removal of a load-bearing suppression.
    return (checked.pragmas.suppresses("R101", line)
            or checked.pragmas.suppresses("R501", line)
            or checked.pragmas.suppresses("R502", line)
            or checked.pragmas.suppresses("R503", line))


def _blocking_sanctioned(checked: CheckedFile, line: int) -> bool:
    # Same consuming logic as _site_sanctioned: a noqa[R601] on the
    # blocking line blesses the whole pathway (the effect stops
    # propagating to every async caller), so it counts as used.
    return checked.pragmas.suppresses("R601", line)


def _raise_sanctioned(checked: CheckedFile, line: int) -> bool:
    # Same consuming logic again: a noqa[R801] on the raise line removes
    # the exception from the escape set project-wide (it stops
    # propagating to every caller's contract), so it counts as used.
    return checked.pragmas.suppresses("R801", line)


def _raise_names(checked: CheckedFile, node: ast.Raise) -> List[str]:
    """The class name(s) a ``raise`` statement can throw, or ``[]`` when
    unresolvable (bare ``raise``, or a variable not bound by an enclosing
    ``except E as var``) — precision over recall, like call resolution."""
    exc = node.exc
    if exc is None:
        return []
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return [exc.attr]
    if not isinstance(exc, ast.Name):
        return []
    name = exc.id
    if name[:1].isupper():
        return [name]
    # ``raise var`` — resolve through the enclosing ``except E as var``.
    parent = checked.parent(node)
    while parent is not None and not isinstance(
        parent, (ast.FunctionDef, ast.AsyncFunctionDef)
    ):
        if isinstance(parent, ast.ExceptHandler) and parent.name == name:
            return handler_names(parent)
        parent = checked.parent(parent)
    return []


def _collect_raises(info: FunctionInfo) -> None:
    checked = info.checked
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Raise):
            continue
        for exc_name in _raise_names(checked, node):
            info.raises.append(RaiseSite(
                node=node, line=node.lineno, exc_name=exc_name,
                sanctioned=_raise_sanctioned(checked, node.lineno),
            ))


def _collect_functions(checked: CheckedFile) -> List[FunctionInfo]:
    out: List[FunctionInfo] = []
    for stmt in checked.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(FunctionInfo(checked, stmt, stmt.name, None))
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append(FunctionInfo(
                        checked, member, f"{stmt.name}.{member.name}",
                        stmt.name,
                    ))
    return out


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _collect_class_bases(checked: CheckedFile) -> Dict[str, List[str]]:
    bases: Dict[str, List[str]] = {}
    for stmt in checked.tree.body:
        if isinstance(stmt, ast.ClassDef):
            bases[stmt.name] = [
                name for name in (_base_name(b) for b in stmt.bases)
                if name is not None
            ]
    return bases


def _scan_body(info: FunctionInfo, config: CheckConfig) -> None:
    checked = info.checked
    blocking_receiver = re.compile(config.blocking_receiver_pattern,
                                   re.IGNORECASE)
    for node in ast.walk(info.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attribute = storage_attribute(target, config)
            if attribute is not None:
                info.writes.append(WriteSite(
                    node=node, line=node.lineno, kind="storage-assign",
                    detail=f"{attribute.attr} assignment",
                    sanctioned=_site_sanctioned(checked, node.lineno),
                ))
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if config.is_blocking_callee(func.id):
                info.blocking.append(BlockingSite(
                    node=node, line=node.lineno, detail=f"{func.id}()",
                    sanctioned=_blocking_sanctioned(checked, node.lineno),
                ))
                continue
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="name",
                name=func.id, callee=func.id,
            ))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        receiver = receiver_text(func.value)
        dotted = f"{receiver}.{func.attr}" if receiver else None
        if dotted is not None and config.is_blocking_callee(dotted):
            info.blocking.append(BlockingSite(
                node=node, line=node.lineno, detail=f"{dotted}()",
                sanctioned=_blocking_sanctioned(checked, node.lineno),
            ))
            continue
        if (receiver is not None
                and func.attr in config.blocking_methods
                and blocking_receiver.search(receiver.rsplit(".", 1)[-1])
                and not isinstance(checked.parent(node), ast.Await)):
            # threading-style .acquire()/.wait()/.join() on a lock- or
            # thread-shaped receiver; the awaited form is the asyncio
            # primitive and does not block.
            info.blocking.append(BlockingSite(
                node=node, line=node.lineno,
                detail=f"{receiver}.{func.attr}()",
                sanctioned=_blocking_sanctioned(checked, node.lineno),
            ))
            continue
        if (func.attr in config.storage_mutators
                and receiver is not None and receiver != "self"
                and is_table_receiver(receiver, config)):
            info.writes.append(WriteSite(
                node=node, line=node.lineno, kind="mutator-call",
                detail=f"{receiver}.{func.attr}()",
                sanctioned=_site_sanctioned(checked, node.lineno),
            ))
            continue
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="self-method",
                name=func.attr, callee=f"self.{func.attr}",
            ))
            continue
        if (func.attr == "apply" and receiver is not None
                and receiver.rsplit(".", 1)[-1].lower().endswith("plan")):
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="plan-apply",
                name=func.attr, callee=f"{receiver}.apply",
            ))


def _resolve_calls(
    functions: Dict[str, FunctionInfo],
    class_bases: Dict[str, List[str]],
) -> None:
    module_functions: Dict[str, List[FunctionInfo]] = {}
    local_functions: Dict[Tuple[str, str], FunctionInfo] = {}
    methods: Dict[Tuple[str, str], List[FunctionInfo]] = {}
    plan_appliers: List[FunctionInfo] = []
    for info in functions.values():
        if info.class_name is None:
            module_functions.setdefault(info.name, []).append(info)
            local_functions[(info.rel, info.name)] = info
        else:
            methods.setdefault(
                (info.class_name, info.name), []
            ).append(info)
            if (info.name == "apply"
                    and info.class_name.endswith("Plan")):
                plan_appliers.append(info)

    def method_lookup(class_name: str, name: str,
                      seen: Optional[set] = None) -> List[FunctionInfo]:
        if seen is None:
            seen = set()
        if class_name in seen:
            return []
        seen.add(class_name)
        found = methods.get((class_name, name))
        if found:
            return found
        resolved: List[FunctionInfo] = []
        for base in class_bases.get(class_name, []):
            resolved.extend(method_lookup(base, name, seen))
        return resolved

    for info in functions.values():
        for site in info.calls:
            if site.kind == "name":
                local = local_functions.get((info.rel, site.name))
                if local is not None:
                    site.targets = [local]
                else:
                    site.targets = list(
                        module_functions.get(site.name, [])
                    )
            elif site.kind == "self-method":
                if info.class_name is not None:
                    site.targets = method_lookup(
                        info.class_name, site.name
                    )
            elif site.kind == "plan-apply":
                site.targets = list(plan_appliers)


def _propagate_writes(functions: Dict[str, FunctionInfo]) -> None:
    for info in functions.values():
        effective = info.effective_writes()
        if effective:
            site = effective[0]
            info.writes_cells = True
            info.write_witness = (
                f"{site.detail} in {info.qualname} "
                f"({info.rel}:{site.line})"
            )
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            if info.writes_cells:
                continue
            for site in info.calls:
                writer = next(
                    (t for t in site.targets if t.writes_cells), None
                )
                if writer is not None:
                    info.writes_cells = True
                    info.write_witness = writer.write_witness
                    changed = True
                    break


def _propagate_blocking(functions: Dict[str, FunctionInfo]) -> None:
    for info in functions.values():
        effective = info.effective_blocking()
        if effective:
            site = effective[0]
            info.blocks_loop = True
            info.blocking_witness = (
                f"{site.detail} in {info.qualname} "
                f"({info.rel}:{site.line})"
            )
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            if info.blocks_loop:
                continue
            for site in info.calls:
                blocker = next(
                    (t for t in site.targets if t.blocks_loop), None
                )
                if blocker is not None:
                    info.blocks_loop = True
                    info.blocking_witness = blocker.blocking_witness
                    changed = True
                    break


def _propagate_raises(
    functions: Dict[str, FunctionInfo],
    exception_bases: Dict[str, List[str]],
) -> None:
    for info in functions.values():
        for site in info.raises:
            if site.sanctioned or site.exc_name in info.escapes:
                continue
            if escapes_enclosing(info.checked, site.node, site.exc_name,
                                 exception_bases):
                info.escapes[site.exc_name] = (
                    f"raise {site.exc_name} in {info.qualname} "
                    f"({info.rel}:{site.line})"
                )
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            for site in info.calls:
                for target in site.targets:
                    for exc, witness in target.escapes.items():
                        if exc in info.escapes:
                            continue
                        if escapes_enclosing(info.checked, site.node,
                                             exc, exception_bases):
                            info.escapes[exc] = (
                                f"{site.callee}() at {info.rel}:"
                                f"{site.line} -> {witness}"
                            )
                            changed = True


def build_project(
    checked_files: Sequence[CheckedFile], config: CheckConfig
) -> ProjectModel:
    """Build the interprocedural model over all parsed files."""
    files: Dict[str, CheckedFile] = {c.rel: c for c in checked_files}
    functions: Dict[str, FunctionInfo] = {}
    class_bases: Dict[str, List[str]] = {}
    for checked in checked_files:
        for info in _collect_functions(checked):
            functions[info.key] = info
        # Bare class names are treated as project-unique; a collision
        # only widens resolution (more targets), never hides a writer.
        for name, bases in _collect_class_bases(checked).items():
            class_bases.setdefault(name, []).extend(bases)
    exception_bases: Dict[str, List[str]] = {
        name: list(parents)
        for name, parents in BUILTIN_EXCEPTION_BASES.items()
    }
    for name, parents in class_bases.items():
        exception_bases[name] = list(parents)
    for info in functions.values():
        _scan_body(info, config)
        _collect_raises(info)
    _resolve_calls(functions, class_bases)
    _propagate_writes(functions)
    _propagate_blocking(functions)
    _propagate_raises(functions, exception_bases)
    return ProjectModel(files, functions, class_bases, exception_bases)
