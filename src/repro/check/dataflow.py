"""Interprocedural dataflow over the checked project: who writes cells?

The R1xx rules are per-file: they see ``table.xor(...)`` and judge the
*site*. The R5xx invariant rules need more — ``self._run_update(handle)``
in ``embedder.insert`` eventually XORs value-table cells three calls
down, and whether *that* is safe depends on the exception edges between
the assistant-table registration and the cell write. This module builds
the project-wide model those rules consume:

- every top-level function and method of every checked file becomes a
  :class:`FunctionInfo` (nested ``def``\\ s — walk callbacks — are folded
  into their enclosing function, matching the R2xx convention);
- direct cell-write sites are collected per function (storage-attribute
  assignment, or a mutating call on a table-ish receiver). A site whose
  line carries a justified ``noqa[R101]``/``noqa[R5...]`` is *sanctioned*
  and does not contribute write effects — the pragma blesses the whole
  pathway, not just the line;
- call sites are resolved conservatively: plain-name calls to
  module-level functions (same file first, then project-wide),
  ``self.method()`` through the class and its bases, and
  ``<...plan>.apply()`` to the ``apply`` methods of ``*Plan`` classes.
  Arbitrary object-method calls stay unresolved — precision over recall,
  so a ``cache.clear()`` never smears write effects across the graph;
- ``writes_cells`` is propagated to a fixed point over the call edges,
  each function keeping a witness (the direct-write site it reaches) for
  the diagnostics.

:mod:`repro.check.rules_invariant` turns the model into R501–R503.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.engine import CheckConfig, CheckedFile

__all__ = [
    "BlockingSite",
    "WriteSite",
    "CallSite",
    "FunctionInfo",
    "ProjectModel",
    "build_project",
    "receiver_text",
    "is_table_receiver",
    "storage_attribute",
]

#: receivers that look like a value-table handle: a bare/dotted name whose
#: last segment is ``table``/``*_table``, or the raw storage attributes.
_TABLE_SEGMENT_RE = re.compile(r"(^|_)table$")


def receiver_text(node: ast.expr) -> Optional[str]:
    """Dotted-name text of a receiver expression, or None if not name-ish."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def is_table_receiver(text: str, config: CheckConfig) -> bool:
    """True if a dotted receiver looks like a value-table handle."""
    last = text.rsplit(".", 1)[-1]
    return bool(_TABLE_SEGMENT_RE.search(last)) or last in config.storage_attrs


def storage_attribute(
    node: ast.expr, config: CheckConfig
) -> Optional[ast.Attribute]:
    """The ``<expr>._cells`` / ``<expr>._words`` attribute inside a write
    target, unwrapping subscripts (``x._cells[i] = v``)."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if (isinstance(current, ast.Attribute)
            and current.attr in config.storage_attrs):
        return current
    return None


@dataclass
class WriteSite:
    """One direct cell-write site inside a function body."""

    node: ast.AST
    line: int
    #: ``storage-assign`` (raw ``_cells``/``_words`` target) or
    #: ``mutator-call`` (``table.xor(...)`` etc.)
    kind: str
    #: human-readable form for diagnostics (``table.xor()``)
    detail: str
    #: the line carries a justified ``noqa[R101]``/``noqa[R5...]`` — the
    #: site is sanctioned and contributes no write effect.
    sanctioned: bool


@dataclass
class BlockingSite:
    """One direct event-loop-blocking call inside a function body (R601).

    ``time.sleep``, subprocess spawns, file/socket I/O, or an un-awaited
    ``.acquire()``/``.wait()``/``.join()`` on a lock-/thread-shaped
    receiver. Collected for *every* function so the effect can propagate
    over the call graph; the R601 rule only judges ``async def``\\ s in
    the serve scope."""

    node: ast.AST
    line: int
    #: human-readable form for diagnostics (``time.sleep()``)
    detail: str
    #: the line carries a justified ``noqa[R601]`` — no effect contributed.
    sanctioned: bool


@dataclass
class CallSite:
    """One resolvable call site inside a function body."""

    node: ast.Call
    line: int
    #: resolution shape: ``name`` / ``self-method`` / ``plan-apply``
    kind: str
    #: the called function/method name (``_run_update``, ``apply``)
    name: str
    #: source-ish text for diagnostics (``self._run_update``)
    callee: str
    #: resolved targets, filled in by :func:`build_project`
    targets: List["FunctionInfo"] = field(default_factory=list)

    def writing_targets(self) -> List["FunctionInfo"]:
        return [target for target in self.targets if target.writes_cells]


@dataclass
class FunctionInfo:
    """One top-level function or method (nested defs folded in)."""

    checked: CheckedFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    qualname: str
    class_name: Optional[str]
    writes: List[WriteSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)
    #: fixed-point result: this function (transitively) writes cells
    writes_cells: bool = False
    #: where the writes bottom out, for diagnostics
    write_witness: str = ""
    #: fixed-point result: this function (transitively) blocks the
    #: calling thread — fatal inside an event-loop callback (R601)
    blocks_loop: bool = False
    #: where the blocking bottoms out, for diagnostics
    blocking_witness: str = ""

    @property
    def rel(self) -> str:
        return self.checked.rel

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")

    @property
    def key(self) -> str:
        return f"{self.rel}::{self.qualname}"

    def effective_writes(self) -> List[WriteSite]:
        """The write sites that contribute effects (not sanctioned)."""
        return [site for site in self.writes if not site.sanctioned]

    def effective_blocking(self) -> List[BlockingSite]:
        """The blocking sites that contribute effects (not sanctioned)."""
        return [site for site in self.blocking if not site.sanctioned]


class ProjectModel:
    """The interprocedural view over every checked file."""

    def __init__(
        self,
        files: Dict[str, CheckedFile],
        functions: Dict[str, FunctionInfo],
        class_bases: Dict[str, List[str]],
    ) -> None:
        self.files = files
        self.functions = functions
        self.class_bases = class_bases

    def functions_in(self, rel: str) -> List[FunctionInfo]:
        return [info for info in self.functions.values()
                if info.rel == rel]


def _site_sanctioned(checked: CheckedFile, line: int) -> bool:
    # Consuming on purpose: sanctioning a write site is the pragma doing
    # its job (it stops the effect propagating to every caller), so it
    # must count as used even when the local rule never fires — R003
    # would otherwise demand the removal of a load-bearing suppression.
    return (checked.pragmas.suppresses("R101", line)
            or checked.pragmas.suppresses("R501", line)
            or checked.pragmas.suppresses("R502", line)
            or checked.pragmas.suppresses("R503", line))


def _blocking_sanctioned(checked: CheckedFile, line: int) -> bool:
    # Same consuming logic as _site_sanctioned: a noqa[R601] on the
    # blocking line blesses the whole pathway (the effect stops
    # propagating to every async caller), so it counts as used.
    return checked.pragmas.suppresses("R601", line)


def _collect_functions(checked: CheckedFile) -> List[FunctionInfo]:
    out: List[FunctionInfo] = []
    for stmt in checked.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(FunctionInfo(checked, stmt, stmt.name, None))
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append(FunctionInfo(
                        checked, member, f"{stmt.name}.{member.name}",
                        stmt.name,
                    ))
    return out


def _base_name(base: ast.expr) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _collect_class_bases(checked: CheckedFile) -> Dict[str, List[str]]:
    bases: Dict[str, List[str]] = {}
    for stmt in checked.tree.body:
        if isinstance(stmt, ast.ClassDef):
            bases[stmt.name] = [
                name for name in (_base_name(b) for b in stmt.bases)
                if name is not None
            ]
    return bases


def _scan_body(info: FunctionInfo, config: CheckConfig) -> None:
    checked = info.checked
    blocking_receiver = re.compile(config.blocking_receiver_pattern,
                                   re.IGNORECASE)
    for node in ast.walk(info.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attribute = storage_attribute(target, config)
            if attribute is not None:
                info.writes.append(WriteSite(
                    node=node, line=node.lineno, kind="storage-assign",
                    detail=f"{attribute.attr} assignment",
                    sanctioned=_site_sanctioned(checked, node.lineno),
                ))
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if config.is_blocking_callee(func.id):
                info.blocking.append(BlockingSite(
                    node=node, line=node.lineno, detail=f"{func.id}()",
                    sanctioned=_blocking_sanctioned(checked, node.lineno),
                ))
                continue
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="name",
                name=func.id, callee=func.id,
            ))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        receiver = receiver_text(func.value)
        dotted = f"{receiver}.{func.attr}" if receiver else None
        if dotted is not None and config.is_blocking_callee(dotted):
            info.blocking.append(BlockingSite(
                node=node, line=node.lineno, detail=f"{dotted}()",
                sanctioned=_blocking_sanctioned(checked, node.lineno),
            ))
            continue
        if (receiver is not None
                and func.attr in config.blocking_methods
                and blocking_receiver.search(receiver.rsplit(".", 1)[-1])
                and not isinstance(checked.parent(node), ast.Await)):
            # threading-style .acquire()/.wait()/.join() on a lock- or
            # thread-shaped receiver; the awaited form is the asyncio
            # primitive and does not block.
            info.blocking.append(BlockingSite(
                node=node, line=node.lineno,
                detail=f"{receiver}.{func.attr}()",
                sanctioned=_blocking_sanctioned(checked, node.lineno),
            ))
            continue
        if (func.attr in config.storage_mutators
                and receiver is not None and receiver != "self"
                and is_table_receiver(receiver, config)):
            info.writes.append(WriteSite(
                node=node, line=node.lineno, kind="mutator-call",
                detail=f"{receiver}.{func.attr}()",
                sanctioned=_site_sanctioned(checked, node.lineno),
            ))
            continue
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="self-method",
                name=func.attr, callee=f"self.{func.attr}",
            ))
            continue
        if (func.attr == "apply" and receiver is not None
                and receiver.rsplit(".", 1)[-1].lower().endswith("plan")):
            info.calls.append(CallSite(
                node=node, line=node.lineno, kind="plan-apply",
                name=func.attr, callee=f"{receiver}.apply",
            ))


def _resolve_calls(
    functions: Dict[str, FunctionInfo],
    class_bases: Dict[str, List[str]],
) -> None:
    module_functions: Dict[str, List[FunctionInfo]] = {}
    local_functions: Dict[Tuple[str, str], FunctionInfo] = {}
    methods: Dict[Tuple[str, str], List[FunctionInfo]] = {}
    plan_appliers: List[FunctionInfo] = []
    for info in functions.values():
        if info.class_name is None:
            module_functions.setdefault(info.name, []).append(info)
            local_functions[(info.rel, info.name)] = info
        else:
            methods.setdefault(
                (info.class_name, info.name), []
            ).append(info)
            if (info.name == "apply"
                    and info.class_name.endswith("Plan")):
                plan_appliers.append(info)

    def method_lookup(class_name: str, name: str,
                      seen: Optional[set] = None) -> List[FunctionInfo]:
        if seen is None:
            seen = set()
        if class_name in seen:
            return []
        seen.add(class_name)
        found = methods.get((class_name, name))
        if found:
            return found
        resolved: List[FunctionInfo] = []
        for base in class_bases.get(class_name, []):
            resolved.extend(method_lookup(base, name, seen))
        return resolved

    for info in functions.values():
        for site in info.calls:
            if site.kind == "name":
                local = local_functions.get((info.rel, site.name))
                if local is not None:
                    site.targets = [local]
                else:
                    site.targets = list(
                        module_functions.get(site.name, [])
                    )
            elif site.kind == "self-method":
                if info.class_name is not None:
                    site.targets = method_lookup(
                        info.class_name, site.name
                    )
            elif site.kind == "plan-apply":
                site.targets = list(plan_appliers)


def _propagate_writes(functions: Dict[str, FunctionInfo]) -> None:
    for info in functions.values():
        effective = info.effective_writes()
        if effective:
            site = effective[0]
            info.writes_cells = True
            info.write_witness = (
                f"{site.detail} in {info.qualname} "
                f"({info.rel}:{site.line})"
            )
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            if info.writes_cells:
                continue
            for site in info.calls:
                writer = next(
                    (t for t in site.targets if t.writes_cells), None
                )
                if writer is not None:
                    info.writes_cells = True
                    info.write_witness = writer.write_witness
                    changed = True
                    break


def _propagate_blocking(functions: Dict[str, FunctionInfo]) -> None:
    for info in functions.values():
        effective = info.effective_blocking()
        if effective:
            site = effective[0]
            info.blocks_loop = True
            info.blocking_witness = (
                f"{site.detail} in {info.qualname} "
                f"({info.rel}:{site.line})"
            )
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            if info.blocks_loop:
                continue
            for site in info.calls:
                blocker = next(
                    (t for t in site.targets if t.blocks_loop), None
                )
                if blocker is not None:
                    info.blocks_loop = True
                    info.blocking_witness = blocker.blocking_witness
                    changed = True
                    break


def build_project(
    checked_files: Sequence[CheckedFile], config: CheckConfig
) -> ProjectModel:
    """Build the interprocedural model over all parsed files."""
    files: Dict[str, CheckedFile] = {c.rel: c for c in checked_files}
    functions: Dict[str, FunctionInfo] = {}
    class_bases: Dict[str, List[str]] = {}
    for checked in checked_files:
        for info in _collect_functions(checked):
            functions[info.key] = info
        # Bare class names are treated as project-unique; a collision
        # only widens resolution (more targets), never hides a writer.
        for name, bases in _collect_class_bases(checked).items():
            class_bases.setdefault(name, []).extend(bases)
    for info in functions.values():
        _scan_body(info, config)
    _resolve_calls(functions, class_bases)
    _propagate_writes(functions)
    _propagate_blocking(functions)
    return ProjectModel(files, functions, class_bases)
