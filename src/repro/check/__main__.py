"""``python -m repro.check`` — run the project static-analysis suite."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
