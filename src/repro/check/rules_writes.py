"""R1 — value-table write encapsulation.

The XOR invariant ``A1 ^ A2 ^ A3 == value`` (PAPER.md §update) is only
maintained by the sanctioned write paths: the update planner, the static
peel, the embedder itself, and the storage classes they drive. Any other
module mutating cell storage — assigning the raw ``_cells``/``_words``
arrays, or calling a mutating method (``xor``/``set``/``load_dense``/
``clear``/``fill``) on a value-table handle — can silently break every
stored equation, so R101 flags it. Sanctioned exceptions (snapshot
restore, replica replay) carry an inline justified ``noqa``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.dataflow import (
    is_table_receiver as _is_table_receiver,
    receiver_text as _receiver_text,
    storage_attribute as _storage_attribute,
)
from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = ["check_value_table_writes"]


@register
def check_value_table_writes(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R101: cell storage is written outside the sanctioned modules."""
    if config.allows_table_writes(checked.rel):
        return
    for node in ast.walk(checked.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attribute = _storage_attribute(target, config)
            if attribute is None:
                continue
            owner = attribute.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                continue  # a class writing its *own* storage attribute
            yield checked.violation(
                "R101", node,
                f"direct write to {attribute.attr!r} cell storage — only "
                "the sanctioned write-path modules may mutate the value "
                "table (see docs/static_analysis.md R1)",
            )
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in config.storage_mutators:
            receiver = _receiver_text(node.func.value)
            if receiver is None or receiver == "self":
                continue
            if receiver in tuple(
                f"self.{attr}" for attr in config.storage_attrs
            ):
                continue  # a class mutating its *own* storage attribute
            if not _is_table_receiver(receiver, config):
                continue
            yield checked.violation(
                "R101", node,
                f"call {receiver}.{node.func.attr}() mutates value-table "
                "cells outside the sanctioned write-path modules",
            )
