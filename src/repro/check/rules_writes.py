"""R1 — value-table write encapsulation.

The XOR invariant ``A1 ^ A2 ^ A3 == value`` (PAPER.md §update) is only
maintained by the sanctioned write paths: the update planner, the static
peel, the embedder itself, and the storage classes they drive. Any other
module mutating cell storage — assigning the raw ``_cells``/``_words``
arrays, or calling a mutating method (``xor``/``set``/``load_dense``/
``clear``/``fill``) on a value-table handle — can silently break every
stored equation, so R101 flags it. Sanctioned exceptions (snapshot
restore, replica replay) carry an inline justified ``noqa``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = ["check_value_table_writes"]

#: receivers that look like a value-table handle: a bare/dotted name whose
#: last segment is ``table``/``*_table``, or the raw storage attributes.
_TABLE_SEGMENT_RE = re.compile(r"(^|_)table$")


def _receiver_text(node: ast.expr) -> Optional[str]:
    """Dotted-name text of a receiver expression, or None if not name-ish."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_table_receiver(text: str, config: CheckConfig) -> bool:
    last = text.rsplit(".", 1)[-1]
    return bool(_TABLE_SEGMENT_RE.search(last)) or last in config.storage_attrs


def _storage_attribute(node: ast.expr, config: CheckConfig
                       ) -> Optional[ast.Attribute]:
    """The ``<expr>._cells`` / ``<expr>._words`` attribute inside a write
    target, unwrapping subscripts (``x._cells[i] = v``)."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if (isinstance(current, ast.Attribute)
            and current.attr in config.storage_attrs):
        return current
    return None


@register
def check_value_table_writes(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R101: cell storage is written outside the sanctioned modules."""
    if config.allows_table_writes(checked.rel):
        return
    for node in ast.walk(checked.tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attribute = _storage_attribute(target, config)
            if attribute is None:
                continue
            owner = attribute.value
            if isinstance(owner, ast.Name) and owner.id == "self":
                continue  # a class writing its *own* storage attribute
            yield checked.violation(
                "R101", node,
                f"direct write to {attribute.attr!r} cell storage — only "
                "the sanctioned write-path modules may mutate the value "
                "table (see docs/static_analysis.md R1)",
            )
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in config.storage_mutators:
            receiver = _receiver_text(node.func.value)
            if receiver is None or receiver == "self":
                continue
            if receiver in tuple(
                f"self.{attr}" for attr in config.storage_attrs
            ):
                continue  # a class mutating its *own* storage attribute
            if not _is_table_receiver(receiver, config):
                continue
            yield checked.violation(
                "R101", node,
                f"call {receiver}.{node.func.attr}() mutates value-table "
                "cells outside the sanctioned write-path modules",
            )
