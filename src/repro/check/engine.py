"""The ``repro.check`` engine: file model, rule registries, orchestration.

A :class:`CheckedFile` bundles everything a rule needs — the parsed AST
with parent links, the raw source lines, and the file's pragma index. The
engine parses each file once, runs every registered rule, applies ``noqa``
suppressions, and reports suppressions that never fired (R003) so stale
escapes cannot accumulate.

Two rule registries exist:

- :data:`RULES` — per-file rules ``(CheckedFile, CheckConfig) ->
  Iterable[Violation]``; see the ``rules_*`` modules.
- :data:`PROJECT_RULES` — project rules ``(ProjectModel, CheckConfig) ->
  Iterable[Violation]`` that see every checked file at once through the
  interprocedural model of :mod:`repro.check.dataflow` (call graph +
  transitive cell-write effects). The R5xx invariant-dataflow rules live
  here: a single file cannot show whether ``self._run_update(...)``
  eventually XORs value-table cells three calls down.

Checking is therefore two-phase: every file is parsed and run through the
per-file rules first, then the project model is built over all parsed
files and the project rules run, and only then is the single suppression
pass applied — so a ``noqa[R501]`` works exactly like a ``noqa[R101]``
and unused suppressions (R003) are judged against the *complete* finding
set. docs/static_analysis.md has the catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.check.pragmas import PragmaIndex, parse_pragmas
from repro.check.violations import Violation

__all__ = [
    "CheckConfig",
    "CheckedFile",
    "RULES",
    "PROJECT_RULES",
    "check_source",
    "check_sources",
    "check_paths",
    "iter_python_files",
    "module_relpath",
]


@dataclass(frozen=True)
class CheckConfig:
    """Tunable knobs of the rule set (defaults encode repo policy)."""

    #: modules allowed to write value-table cell storage directly (R101).
    #: The storage owners themselves plus the sanctioned write paths of
    #: PAPER.md §update; baselines own independent storage (prefix below).
    value_table_writers: Tuple[str, ...] = (
        "repro/core/value_table.py",
        "repro/core/packed_table.py",
        "repro/core/update.py",
        "repro/core/static_build.py",
        "repro/core/embedder.py",
        "repro/core/engine.py",
        "repro/core/sharded.py",
        "repro/core/shared_planes.py",
    )
    value_table_writer_prefixes: Tuple[str, ...] = ("repro/baselines/",)
    #: private attributes holding raw cell storage
    storage_attrs: Tuple[str, ...] = ("_cells", "_words")
    #: mutating methods of the value-table surface
    storage_mutators: Tuple[str, ...] = (
        "xor", "set", "load_dense", "clear", "fill",
    )
    #: classes whose bodies may call raw acquire_*/release_* (R301) —
    #: the lock implementations and their context-manager helpers,
    #: including the instrumented variants (lockset discipline checker,
    #: vector-clock tracer, cooperative-scheduler lock).
    lock_owner_classes: Tuple[str, ...] = (
        "RWLock", "LocksetRWLock", "ClockedRWLock", "CooperativeRWLock",
    )
    raw_lock_methods: Tuple[str, ...] = (
        "acquire_read", "release_read", "acquire_write", "release_write",
    )
    #: function names in which ``assert`` is a sanctioned debug validator
    assert_allowed_pattern: str = r"check|invariant|consisten|verify"
    #: test modules are skipped entirely when scanning a tree
    skip_dir_names: Tuple[str, ...] = ("__pycache__",)
    #: modules whose suffix matches may call print() (R404); everything
    #: else routes output through repro.obs hooks/exporters.
    print_allowed_suffixes: Tuple[str, ...] = ("cli.py", "__main__.py")
    #: the modules whose public mutation paths the R5xx invariant-dataflow
    #: rules hold to the two-phase update protocol (PAPER.md §update).
    invariant_modules: Tuple[str, ...] = (
        "repro/core/update.py",
        "repro/core/embedder.py",
        "repro/core/static_build.py",
    )
    #: assistant-table methods that *register* a key/value (the slow-space
    #: half of the invariant); a cell write after one of these must be
    #: rollback-protected (R501).
    assistant_registrations: Tuple[str, ...] = (
        "add", "add_batch", "set_value",
    )
    #: assistant-table methods an exception handler may use to roll the
    #: registration back (restoring A1^A2^A3 == value on the error edge).
    assistant_rollbacks: Tuple[str, ...] = ("remove", "set_value", "clear")
    #: the public mutation API of the embedder surface: calls resolved to
    #: these *methods* are the sanctioned way into the write path, so R502
    #: does not treat them as raw write-machinery escapes.
    public_mutation_api: Tuple[str, ...] = (
        "insert", "update", "delete", "insert_batch", "insert_many",
        "bulk_load", "reconstruct", "from_pairs",
    )
    #: functions sanctioned to apply per-cell writes in a loop (R503):
    #: the deferred-plan applier (all cells XOR one fixed V_delta) and the
    #: reverse-peel assigners (each write lands in a still-unconstrained
    #: cell, see static_build.py) are all-or-nothing by construction.
    partial_write_appliers: Tuple[str, ...] = (
        "UpdatePlan.apply", "assign_in_reverse", "assign_in_reverse_flat",
    )
    #: modules whose ``async def``\ s are held to the R6xx asyncio
    #: discipline (blocking-call reachability, sanctioned table access).
    async_scope_prefixes: Tuple[str, ...] = ("repro/serve/",)
    #: dotted call names that block the calling thread (R601). An entry
    #: matches the exact callee or any deeper attribute under it
    #: (``subprocess`` covers ``subprocess.run``).
    blocking_calls: Tuple[str, ...] = (
        "time.sleep", "subprocess", "os.system", "os.waitpid",
        "socket.create_connection", "urllib.request.urlopen", "open",
    )
    #: method names that block when called un-awaited on a receiver whose
    #: last segment matches :attr:`blocking_receiver_pattern` (R601) —
    #: ``self._lock.acquire()`` blocks, ``await lock.acquire()`` is the
    #: asyncio variant and is fine.
    blocking_methods: Tuple[str, ...] = ("acquire", "wait", "join")
    blocking_receiver_pattern: str = (
        r"lock|mutex|sem|cond|barrier|event|thread|proc"
    )
    #: functions (``Class.method`` or bare name) sanctioned to touch the
    #: table's data API from serve-scope modules (R604): the batch
    #: executor chain that the micro-batcher runs inline on the event
    #: loop. Everything else must go through the batcher.
    serve_table_executors: Tuple[str, ...] = (
        "TableServer._execute_batch",
        "TableServer._run_lookups",
        "TableServer._run_inserts",
        "TableServer._insert_pairs",
        "TableServer._run_scalar_writes",
        "WorkerPool._apply_write",
    )
    #: the table's data-plane API (R604 judges method *calls*; attribute
    #: reads like ``len(self.table)`` or ``table.metrics`` stay free).
    table_data_api: Tuple[str, ...] = (
        "lookup", "lookup_many", "lookup_batch", "insert", "insert_batch",
        "insert_many", "update", "delete", "bulk_load", "reconstruct",
        "from_pairs",
    )
    #: modules that own plane storage and may mutate views of it in place
    #: (R701). Narrower than :attr:`value_table_writers`: update/engine/
    #: sharded go through the table's mutation API, they do not alias its
    #: planes.
    plane_writer_modules: Tuple[str, ...] = (
        "repro/core/value_table.py",
        "repro/core/packed_table.py",
        "repro/core/assistant_table.py",
        "repro/core/shared_planes.py",
    )
    #: methods that derive a *view* (aliasing memory) from an array —
    #: taint propagates through these (R701/R703).
    view_methods: Tuple[str, ...] = (
        "reshape", "ravel", "view", "transpose", "swapaxes", "squeeze",
    )
    #: methods that materialise fresh memory — taint stops here.
    copy_methods: Tuple[str, ...] = ("copy", "astype", "tolist")
    #: modules whose *public* functions must declare their escapable
    #: exceptions with a ``raises(...)`` pragma (R801).
    exception_contract_modules: Tuple[str, ...] = (
        "repro/core/embedder.py",
        "repro/core/sharded.py",
        "repro/core/persist.py",
    )
    #: the module holding the serve error table R802 checks, and the
    #: table's name inside it.
    serve_protocol_module: str = "repro/serve/protocol.py"
    serve_error_table_name: str = "_ERROR_TABLE"
    #: table classes whose wire-reachable methods feed the R802
    #: escapable-exception set (the serve executors call them through
    #: ``self.table.<method>``, which name-based resolution cannot see).
    serve_table_classes: Tuple[str, ...] = (
        "VisionEmbedder", "ShardedEmbedder",
    )
    #: the table methods the serve layer invokes on behalf of the wire.
    serve_wire_methods: Tuple[str, ...] = (
        "insert", "insert_batch", "update", "delete", "lookup_many",
    )
    #: call names an exception handler / finally block may use to roll a
    #: partially-applied mutation back (R803) — assistant rollbacks plus
    #: the table-level restore paths.
    atomic_rollbacks: Tuple[str, ...] = (
        "remove", "set_value", "clear", "_restore_state", "load_dense",
        "restore", "xor",
    )
    #: dotted callee names that acquire an OS resource needing close()
    #: (R804). An entry matches the exact callee or its last attribute
    #: segment (``ThreadPoolExecutor`` covers
    #: ``concurrent.futures.ThreadPoolExecutor``).
    resource_factories: Tuple[str, ...] = (
        "open", "socket.socket", "mmap.mmap", "ThreadPoolExecutor",
        "ProcessPoolExecutor", "HTTPConnection", "Popen",
    )
    #: method names that release such a resource.
    resource_closers: Tuple[str, ...] = ("close", "shutdown", "terminate")
    #: exception names whose silent swallowing hides table corruption
    #: (R805): a bare ``pass``-style handler for these masks a broken
    #: A1^A2^A3 invariant or a half-read snapshot.
    corruption_exceptions: Tuple[str, ...] = (
        "AssertionError", "ReconstructionFailed", "CorruptSnapshotError",
    )

    def is_contract_module(self, rel: str) -> bool:
        """True if ``rel``'s public functions need raises contracts."""
        return any(rel.endswith(mod)
                   for mod in self.exception_contract_modules)

    def is_resource_factory(self, callee: str) -> bool:
        """True if the dotted callee acquires a closable resource (R804)."""
        last = callee.rsplit(".", 1)[-1]
        return any(callee == name or last == name.rsplit(".", 1)[-1]
                   for name in self.resource_factories)

    def is_assistant_receiver(self, text: str) -> bool:
        """True if a dotted receiver looks like an assistant-table handle."""
        return text.rsplit(".", 1)[-1].lstrip("_").endswith("assistant")

    def is_invariant_module(self, rel: str) -> bool:
        """True if ``rel`` is held to the R5xx invariant protocol."""
        return any(rel.endswith(mod) for mod in self.invariant_modules)

    def allows_table_writes(self, rel: str) -> bool:
        """True if ``rel`` is a sanctioned value-table write-path module."""
        return (
            any(rel.endswith(mod) for mod in self.value_table_writers)
            or any(prefix in rel
                   for prefix in self.value_table_writer_prefixes)
        )

    def in_async_scope(self, rel: str) -> bool:
        """True if ``rel`` is held to the R6xx asyncio discipline."""
        return any(rel.startswith(prefix) or f"/{prefix}" in rel
                   for prefix in self.async_scope_prefixes)

    def owns_planes(self, rel: str) -> bool:
        """True if ``rel`` may mutate plane-storage views in place (R701)."""
        return (
            any(rel.endswith(mod) for mod in self.plane_writer_modules)
            or any(prefix in rel
                   for prefix in self.value_table_writer_prefixes)
        )

    def is_blocking_callee(self, callee: str) -> bool:
        """True if the dotted callee text names a blocking call (R601)."""
        return any(callee == name or callee.startswith(name + ".")
                   for name in self.blocking_calls)


class CheckedFile:
    """One parsed source file with everything the rules consume."""

    def __init__(self, rel: str, source: str, tree: ast.Module,
                 pragmas: PragmaIndex) -> None:
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.pragmas = pragmas
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    # -- navigation ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_classes(self, node: ast.AST) -> List[str]:
        """Names of the classes lexically enclosing ``node``, innermost
        first."""
        return [
            ancestor.name for ancestor in self.ancestors(node)
            if isinstance(ancestor, ast.ClassDef)
        ]

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- pragma helpers ------------------------------------------------

    def _def_pragma_lines(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> "set[int]":
        """Lines where a def-scoped pragma may sit: the contiguous run of
        ``# repro:`` comment lines above the def (or its first decorator)
        plus every *signature* line — a multi-line signature carries
        trailing pragmas on its closing paren, not on the ``def`` line.
        The comment run lets several directives stack on one def
        (``raises(...)`` above ``atomic`` above the signature)."""
        first_line = (
            node.decorator_list[0].lineno if node.decorator_list
            else node.lineno
        )
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        candidates = set(range(node.lineno, max(body_start,
                                                node.lineno + 1)))
        above = first_line - 1
        candidates.add(above)
        while (above >= 1 and above <= len(self.lines)
               and re.match(r"\s*#\s*repro:", self.lines[above - 1])):
            candidates.add(above)
            above -= 1
        return candidates

    def is_hotpath(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """True if the def carries a ``# repro: hotpath`` pragma."""
        return bool(
            self._def_pragma_lines(node) & self.pragmas.hotpath_lines
        )

    def arrays_contract(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Optional[Tuple[str, ...]]:
        """The ``# repro: arrays(...)`` dtype allowlist on a def, if any."""
        for line in sorted(self._def_pragma_lines(node)):
            contract = self.pragmas.arrays_lines.get(line)
            if contract is not None:
                return contract
        return None

    def is_atomic(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """True if the def carries a ``# repro: atomic`` pragma."""
        return bool(
            self._def_pragma_lines(node) & self.pragmas.atomic_lines
        )

    def raises_contract(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Optional[Tuple[str, ...]]:
        """The ``# repro: raises(...)`` contract on a def, if any.

        Several ``raises(...)`` lines stacked above one def union into a
        single contract (a long exception list does not have to fit one
        comment line)."""
        names: List[str] = []
        found = False
        for line in sorted(self._def_pragma_lines(node)):
            contract = self.pragmas.raises_lines.get(line)
            if contract is not None:
                found = True
                names.extend(n for n in contract if n not in names)
        return tuple(names) if found else None

    def hotpath_functions(
        self,
    ) -> List[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            node for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and self.is_hotpath(node)
        ]

    # -- reporting helpers ---------------------------------------------

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Violation(
            rule=rule, path=self.rel, line=line, col=col,
            message=message, snippet=self.snippet(line),
        )


Rule = Callable[[CheckedFile, CheckConfig], Iterable[Violation]]

#: the registered per-file rule set, populated by the ``rules_*`` modules.
RULES: List[Rule] = []

# A project rule receives the interprocedural model built over *every*
# checked file (repro.check.dataflow.ProjectModel); typed loosely here to
# keep engine <-> dataflow imports acyclic.
ProjectRule = Callable[[object, CheckConfig], Iterable[Violation]]

#: the registered project-wide rule set (``rules_invariant``).
PROJECT_RULES: List[ProjectRule] = []


def register(rule: Rule) -> Rule:
    """Decorator adding a per-file rule function to :data:`RULES`."""
    RULES.append(rule)
    return rule


def register_project(rule: ProjectRule) -> ProjectRule:
    """Decorator adding a project-wide rule to :data:`PROJECT_RULES`."""
    PROJECT_RULES.append(rule)
    return rule


def _load_rules() -> None:
    # Imported for their ``@register`` side effects; at the bottom so the
    # rule modules can import ``register`` from here.
    from repro.check import (  # noqa: F401  (registration side effect)
        rules_arrays,
        rules_async,
        rules_exceptions,
        rules_hotpath,
        rules_hygiene,
        rules_invariant,
        rules_locks,
        rules_resources,
        rules_writes,
    )


def check_sources(
    sources: "Dict[str, str]",
    config: Optional[CheckConfig] = None,
) -> List[Violation]:
    """Run the full two-phase check over a set of in-memory files.

    ``sources`` maps module-relative posix paths (``repro/core/update.py``)
    to source text. Phase one parses every file and runs the per-file
    rules; phase two builds the interprocedural project model over all
    files that parsed and runs the project rules. Suppression is a single
    pass at the end so a ``noqa[R501]`` on a call site works exactly like
    a ``noqa[R101]``, and unused suppressions (R003) are judged against
    the complete finding set. Returns violations sorted by location.
    """
    if config is None:
        config = CheckConfig()
    if not RULES:
        _load_rules()
    found: List[Violation] = []
    checked_files: List[CheckedFile] = []
    by_rel: Dict[str, CheckedFile] = {}
    for rel in sorted(sources):
        source = sources[rel]
        pragmas = parse_pragmas(source, rel)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            found.append(Violation(
                rule="R000", path=rel, line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            ))
            continue
        checked = CheckedFile(rel, source, tree, pragmas)
        checked_files.append(checked)
        by_rel[rel] = checked
        found.extend(pragmas.problems)
        for rule in RULES:
            found.extend(rule(checked, config))
    if checked_files:
        from repro.check.dataflow import build_project
        model = build_project(checked_files, config)
        for project_rule in PROJECT_RULES:
            found.extend(project_rule(model, config))
    surviving: List[Violation] = []
    for violation in found:
        checked_file = by_rel.get(violation.path)
        if (
            checked_file is not None
            and violation.rule[1] != "0"
            and checked_file.pragmas.suppresses(
                violation.rule, violation.line
            )
        ):
            continue
        surviving.append(violation)
    for checked in checked_files:
        for suppression in checked.pragmas.unused():
            surviving.append(Violation(
                rule="R003", path=checked.rel, line=suppression.line, col=1,
                message=(
                    "suppression never fired (noqa"
                    f"[{','.join(suppression.codes)}]) — remove it"
                ),
                snippet=checked.snippet(suppression.line),
            ))
    return sorted(surviving, key=lambda v: (v.path, v.line, v.rule))


def check_source(
    source: str,
    rel: str,
    config: Optional[CheckConfig] = None,
) -> List[Violation]:
    """Run every rule over one in-memory source file.

    ``rel`` is the module-relative posix path (``repro/core/update.py``);
    the R101/R301 allowlists match against it. A single file still gets
    the project rules — its project model just has one module in it.
    Returns the surviving violations sorted by location — pragma problems
    first-class among them, suppressed findings removed, unused
    suppressions added (R003).
    """
    return check_sources({rel: source}, config)


def module_relpath(path: Path) -> str:
    """Normalise a filesystem path to the module-relative form.

    Everything up to and including a leading ``src/`` component is
    dropped, so ``src/repro/core/update.py`` and an absolute variant both
    become ``repro/core/update.py`` (what the allowlists match against).
    """
    posix = path.as_posix()
    marker = "src/"
    index = posix.rfind(marker)
    if index != -1:
        return posix[index + len(marker):]
    return posix.lstrip("./")


def iter_python_files(
    paths: Iterable[Path], config: CheckConfig
) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to check."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in config.skip_dir_names
                       for part in candidate.parts):
                    continue
                yield candidate
        else:
            yield path


def check_paths(
    paths: Iterable[Path],
    config: Optional[CheckConfig] = None,
) -> List[Violation]:
    """Check every python file under ``paths`` (files or directories)."""
    if config is None:
        config = CheckConfig()
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths, config):
        sources[module_relpath(path)] = path.read_text(encoding="utf-8")
    return check_sources(sources, config)
