"""The ``repro.check`` engine: file model, rule registry, orchestration.

A :class:`CheckedFile` bundles everything a rule needs — the parsed AST
with parent links, the raw source lines, and the file's pragma index. The
engine parses each file once, runs every registered rule, applies ``noqa``
suppressions, and reports suppressions that never fired (R003) so stale
escapes cannot accumulate.

Rules are plain functions ``(CheckedFile, CheckConfig) -> Iterable[Violation]``
registered in :data:`RULES`; see the ``rules_*`` modules for the
project-specific rule set and docs/static_analysis.md for the catalogue.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.check.pragmas import PragmaIndex, parse_pragmas
from repro.check.violations import Violation

__all__ = [
    "CheckConfig",
    "CheckedFile",
    "RULES",
    "check_source",
    "check_paths",
    "iter_python_files",
    "module_relpath",
]


@dataclass(frozen=True)
class CheckConfig:
    """Tunable knobs of the rule set (defaults encode repo policy)."""

    #: modules allowed to write value-table cell storage directly (R101).
    #: The storage owners themselves plus the sanctioned write paths of
    #: PAPER.md §update; baselines own independent storage (prefix below).
    value_table_writers: Tuple[str, ...] = (
        "repro/core/value_table.py",
        "repro/core/packed_table.py",
        "repro/core/update.py",
        "repro/core/static_build.py",
        "repro/core/embedder.py",
    )
    value_table_writer_prefixes: Tuple[str, ...] = ("repro/baselines/",)
    #: private attributes holding raw cell storage
    storage_attrs: Tuple[str, ...] = ("_cells", "_words")
    #: mutating methods of the value-table surface
    storage_mutators: Tuple[str, ...] = (
        "xor", "set", "load_dense", "clear", "fill",
    )
    #: classes whose bodies may call raw acquire_*/release_* (R301) —
    #: the lock implementations and their context-manager helpers.
    lock_owner_classes: Tuple[str, ...] = ("RWLock", "LocksetRWLock")
    raw_lock_methods: Tuple[str, ...] = (
        "acquire_read", "release_read", "acquire_write", "release_write",
    )
    #: function names in which ``assert`` is a sanctioned debug validator
    assert_allowed_pattern: str = r"check|invariant|consisten|verify"
    #: test modules are skipped entirely when scanning a tree
    skip_dir_names: Tuple[str, ...] = ("__pycache__",)

    def allows_table_writes(self, rel: str) -> bool:
        """True if ``rel`` is a sanctioned value-table write-path module."""
        return (
            any(rel.endswith(mod) for mod in self.value_table_writers)
            or any(prefix in rel
                   for prefix in self.value_table_writer_prefixes)
        )


class CheckedFile:
    """One parsed source file with everything the rules consume."""

    def __init__(self, rel: str, source: str, tree: ast.Module,
                 pragmas: PragmaIndex) -> None:
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.pragmas = pragmas
        self._parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    # -- navigation ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_classes(self, node: ast.AST) -> List[str]:
        """Names of the classes lexically enclosing ``node``, innermost
        first."""
        return [
            ancestor.name for ancestor in self.ancestors(node)
            if isinstance(ancestor, ast.ClassDef)
        ]

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef | ast.AsyncFunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # -- pragma helpers ------------------------------------------------

    def is_hotpath(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        """True if the def carries a ``# repro: hotpath`` pragma."""
        first_line = (
            node.decorator_list[0].lineno if node.decorator_list
            else node.lineno
        )
        candidates = {node.lineno, first_line - 1}
        return bool(candidates & self.pragmas.hotpath_lines)

    def hotpath_functions(
        self,
    ) -> List[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            node for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and self.is_hotpath(node)
        ]

    # -- reporting helpers ---------------------------------------------

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Violation(
            rule=rule, path=self.rel, line=line, col=col,
            message=message, snippet=self.snippet(line),
        )


Rule = Callable[[CheckedFile, CheckConfig], Iterable[Violation]]

#: the registered rule set, populated by the ``rules_*`` modules below.
RULES: List[Rule] = []


def register(rule: Rule) -> Rule:
    """Decorator adding a rule function to :data:`RULES`."""
    RULES.append(rule)
    return rule


def _load_rules() -> None:
    # Imported for their ``@register`` side effects; at the bottom so the
    # rule modules can import ``register`` from here.
    from repro.check import (  # noqa: F401  (registration side effect)
        rules_hotpath,
        rules_hygiene,
        rules_locks,
        rules_writes,
    )


def check_source(
    source: str,
    rel: str,
    config: Optional[CheckConfig] = None,
) -> List[Violation]:
    """Run every rule over one in-memory source file.

    ``rel`` is the module-relative posix path (``repro/core/update.py``);
    the R101/R301 allowlists match against it. Returns the surviving
    violations sorted by location — pragma problems first-class among
    them, suppressed findings removed, unused suppressions added (R003).
    """
    if config is None:
        config = CheckConfig()
    if not RULES:
        _load_rules()
    pragmas = parse_pragmas(source, rel)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Violation(
            rule="R000", path=rel, line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            message=f"syntax error: {exc.msg}",
        )]
    checked = CheckedFile(rel, source, tree, pragmas)
    found: List[Violation] = list(pragmas.problems)
    for rule in RULES:
        for violation in rule(checked, config):
            if violation.rule[1] != "0" and pragmas.suppresses(
                violation.rule, violation.line
            ):
                continue
            found.append(violation)
    for suppression in pragmas.unused():
        found.append(Violation(
            rule="R003", path=rel, line=suppression.line, col=1,
            message=(
                "suppression never fired (noqa"
                f"[{','.join(suppression.codes)}]) — remove it"
            ),
            snippet=checked.snippet(suppression.line),
        ))
    return sorted(found, key=lambda v: (v.path, v.line, v.rule))


def module_relpath(path: Path) -> str:
    """Normalise a filesystem path to the module-relative form.

    Everything up to and including a leading ``src/`` component is
    dropped, so ``src/repro/core/update.py`` and an absolute variant both
    become ``repro/core/update.py`` (what the allowlists match against).
    """
    posix = path.as_posix()
    marker = "src/"
    index = posix.rfind(marker)
    if index != -1:
        return posix[index + len(marker):]
    return posix.lstrip("./")


def iter_python_files(
    paths: Iterable[Path], config: CheckConfig
) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to check."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in config.skip_dir_names
                       for part in candidate.parts):
                    continue
                yield candidate
        else:
            yield path


def check_paths(
    paths: Iterable[Path],
    config: Optional[CheckConfig] = None,
) -> List[Violation]:
    """Check every python file under ``paths`` (files or directories)."""
    if config is None:
        config = CheckConfig()
    violations: List[Violation] = []
    for path in iter_python_files(paths, config):
        source = path.read_text(encoding="utf-8")
        violations.extend(
            check_source(source, module_relpath(path), config)
        )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))
