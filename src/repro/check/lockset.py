"""Dynamic lock-discipline checking: the runtime counterpart of rule R3.

The static rules in :mod:`repro.check.rules_locks` prove call sites go
through the context-manager helpers; this module checks what actually
*happens* at runtime. :class:`LocksetRWLock` is a drop-in
:class:`~repro.core.concurrent.RWLock` that records, per thread, every
acquire/release event and raises :class:`LockDisciplineError`
synchronously at the misuse site:

- releasing a mode the thread does not hold,
- upgrading read → write while still holding the read lock (guaranteed
  deadlock under writer preference),
- write re-entrancy (a second ``acquire_write`` on the owning thread
  self-deadlocks on a non-reentrant lock),
- re-entrant reads while a writer is queued (the writer-preference gate
  blocks the second read forever — see the test suite's edge cases).

``assert_quiescent()`` verifies every thread has unwound to a balanced
lockset — the standard end-of-test assertion in
``tests/test_concurrent.py``.

Detection happens *before* delegating to the real primitive, so a test
observes a typed error instead of a hang.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.core.concurrent import RWLock

__all__ = ["LockDisciplineError", "LocksetRWLock"]


class LockDisciplineError(AssertionError):
    """A thread violated the RWLock usage discipline."""


class LocksetRWLock(RWLock):
    """An :class:`RWLock` that enforces per-thread lockset discipline.

    ``history`` records ``(thread_name, event, read_depth, write_depth)``
    tuples in global order for post-mortem inspection.
    """

    def __init__(self) -> None:
        super().__init__()
        self._state_lock = threading.Lock()
        # thread id -> (read depth, write depth)
        self._held: Dict[int, List[int]] = defaultdict(lambda: [0, 0])
        self.history: List[Tuple[str, str, int, int]] = []

    # -- bookkeeping ---------------------------------------------------

    def _record(self, event: str, reads: int, writes: int) -> None:
        self.history.append(
            (threading.current_thread().name, event, reads, writes)
        )

    def _fail(self, message: str) -> None:
        raise LockDisciplineError(
            f"[{threading.current_thread().name}] {message}"
        )

    # -- instrumented surface ------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._state_lock:
            reads, writes = self._held[me]
            if writes:
                self._fail(
                    "acquire_read while holding the write lock — the "
                    "writer already excludes every reader"
                )
            if reads and self._writers_waiting:
                self._fail(
                    "re-entrant acquire_read while a writer is queued — "
                    "writer preference blocks the inner read forever"
                )
        super().acquire_read()
        with self._state_lock:
            state = self._held[me]
            state[0] += 1
            self._record("acquire_read", state[0], state[1])

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._state_lock:
            state = self._held[me]
            if state[0] <= 0:
                self._fail("release_read without a matching acquire_read")
            state[0] -= 1
            self._record("release_read", state[0], state[1])
        super().release_read()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._state_lock:
            reads, writes = self._held[me]
            if reads:
                self._fail(
                    "read → write upgrade attempt — guaranteed deadlock "
                    "under writer preference; release the read lock first"
                )
            if writes:
                self._fail(
                    "re-entrant acquire_write — RWLock is not reentrant; "
                    "the second acquire waits on its own holder"
                )
        super().acquire_write()
        with self._state_lock:
            state = self._held[me]
            state[1] += 1
            self._record("acquire_write", state[0], state[1])

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._state_lock:
            state = self._held[me]
            if state[1] <= 0:
                self._fail("release_write without a matching acquire_write")
            state[1] -= 1
            self._record("release_write", state[0], state[1])
        super().release_write()

    # -- assertions ----------------------------------------------------

    def held_by_current_thread(self) -> Tuple[int, int]:
        """(read depth, write depth) of the calling thread."""
        with self._state_lock:
            reads, writes = self._held[threading.get_ident()]
            return reads, writes

    def assert_quiescent(self) -> None:
        """Every thread released everything it acquired."""
        with self._state_lock:
            leaked = {
                ident: (reads, writes)
                for ident, (reads, writes) in self._held.items()
                if reads or writes
            }
        if leaked:
            raise LockDisciplineError(
                f"unbalanced locksets at quiescence: {leaked!r} "
                "(thread id -> (reads, writes))"
            )
