"""R6xx — asyncio discipline for the serving layer.

The serving front (PR 7) holds every guarantee on one premise: the event
loop never stalls and every parked future is eventually resolved. Nothing
checked that mechanically until now. Four rules, sharing the
interprocedural model of :mod:`repro.check.dataflow`:

- **R601** — no blocking call (``time.sleep``, file/socket I/O,
  ``subprocess``, an un-awaited ``.acquire()``/``.wait()``/``.join()`` on
  a lock-/thread-shaped receiver) reachable from any ``async def`` in the
  serve scope. Reachability is transitive over the PR 4 call graph: an
  async handler calling a sync helper that sleeps three calls down is
  flagged at the handler's call site, with the witness naming where the
  blocking bottoms out. A ``noqa[R601]`` on the blocking line sanctions
  the whole pathway.
- **R602** — orphan-task rule: every ``create_task``/``ensure_future``
  result must be awaited, have ``.cancel()``/``add_done_callback``
  reachable through the *same name* later in the file, or chain a
  done-callback at the spawn site. An orphaned task dies silently with
  its exception swallowed. The matching is name-based on purpose
  (aliasing through a local defeats it — sanction such sites with a
  justified ``noqa[R602]``, see ``serve/batcher.py``).
- **R603** — parked futures must be resolved on every path: a function
  that ``set_result()``\\ s futures but has no ``set_exception()`` edge
  leaves awaiters parked forever when the computation in between raises;
  likewise a ``set_result`` inside a ``try`` whose handler swallows the
  exception without resolving or re-raising.
- **R604** — table data access only from the sanctioned server-loop
  executors (:attr:`CheckConfig.serve_table_executors`): the event loop
  is the table's lock, and the batcher's handler chain is the only code
  the loop serialises. A connection handler calling ``self.table.insert``
  directly bypasses the batching *and* the ordering guarantees.

docs/static_analysis.md carries the catalogue entries and examples; the
dynamic counterpart is :class:`repro.obs.LoopLagMonitor`.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.check.engine import (
    CheckConfig,
    CheckedFile,
    register,
    register_project,
)
from repro.check.dataflow import ProjectModel, receiver_text
from repro.check.violations import Violation

__all__ = ["analysis_summary"]

_SPAWN_NAMES = ("create_task", "ensure_future")


# ---------------------------------------------------------------------------
# R601 — blocking calls reachable from serve-scope async defs
# ---------------------------------------------------------------------------


@register_project
def rule_async_blocking(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R601: event-loop callbacks must never block the thread."""
    for info in model.functions.values():
        if not isinstance(info.node, ast.AsyncFunctionDef):
            continue
        if not config.in_async_scope(info.rel):
            continue
        direct = info.effective_blocking()
        for site in direct:
            yield Violation(
                rule="R601", path=info.rel, line=site.line,
                col=getattr(site.node, "col_offset", 0) + 1,
                message=(
                    f"async def {info.qualname} blocks the event loop: "
                    f"{site.detail} stalls every queued request — use the "
                    "asyncio equivalent or move it off-loop"
                ),
                snippet=info.checked.snippet(site.line),
            )
        if direct:
            continue
        for call in info.calls:
            blocker = next(
                (t for t in call.targets if t.blocks_loop), None
            )
            if blocker is None:
                continue
            yield Violation(
                rule="R601", path=info.rel, line=call.line,
                col=getattr(call.node, "col_offset", 0) + 1,
                message=(
                    f"async def {info.qualname} reaches a blocking call "
                    f"through {call.callee}(): {blocker.blocking_witness}"
                ),
                snippet=info.checked.snippet(call.line),
            )


# ---------------------------------------------------------------------------
# R602 — orphaned create_task/ensure_future results
# ---------------------------------------------------------------------------


def _is_spawn(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _SPAWN_NAMES
    return isinstance(func, ast.Attribute) and func.attr in _SPAWN_NAMES


def _consumed_names(tree: ast.Module) -> Set[str]:
    """Names through which a stored task is later awaited, cancelled, or
    given a done-callback anywhere in the file (name-based, by design)."""
    consumed: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Name):
                consumed.add(value.id)
            elif isinstance(value, ast.Attribute):
                consumed.add(value.attr)
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("cancel", "add_done_callback")):
            value = node.func.value
            if isinstance(value, ast.Name):
                consumed.add(value.id)
            elif isinstance(value, ast.Attribute):
                consumed.add(value.attr)
    return consumed


def _target_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@register
def rule_orphan_tasks(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R602: a spawned task must have an owner for its lifetime."""
    consumed = _consumed_names(checked.tree)
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.Call) or not _is_spawn(node):
            continue
        parent = checked.parent(node)
        if isinstance(parent, ast.Await):
            continue
        if (isinstance(parent, ast.Attribute)
                and parent.attr == "add_done_callback"):
            continue  # loop.create_task(...).add_done_callback(cb)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (parent.targets
                       if isinstance(parent, ast.Assign)
                       else [parent.target])
            names = [_target_name(t) for t in targets]
            if any(name is not None and name in consumed
                   for name in names):
                continue
        spawn = (node.func.attr if isinstance(node.func, ast.Attribute)
                 else getattr(node.func, "id", "create_task"))
        yield checked.violation(
            "R602", node,
            f"{spawn}() result is never awaited, cancelled, or given a "
            "done-callback — the task is orphaned and its exception is "
            "swallowed silently",
        )


# ---------------------------------------------------------------------------
# R603 — futures resolved on every path
# ---------------------------------------------------------------------------


def _future_calls(
    func: ast.FunctionDef | ast.AsyncFunctionDef, method: str
) -> List[ast.Call]:
    return [
        node for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
    ]


def _has_other_call(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Any call that is not itself future bookkeeping (it may raise)."""
    future_methods = ("set_result", "set_exception", "done", "cancelled",
                      "add_done_callback")
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in future_methods):
            continue
        return True
    return False


def _swallowing_handlers(
    checked: CheckedFile, call: ast.Call
) -> Iterator[ast.ExceptHandler]:
    """Handlers of ``try`` blocks enclosing ``call`` (in the try *body*)
    that neither re-raise nor resolve futures — the exception edge parks
    the awaiters forever."""
    for ancestor in checked.ancestors(call):
        if not isinstance(ancestor, ast.Try):
            continue
        in_body = any(
            call is node or any(call is sub for sub in ast.walk(node))
            for node in ancestor.body
        )
        if not in_body:
            continue
        for handler in ancestor.handlers:
            resolves = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "set_exception"
                for node in ast.walk(handler)
            )
            reraises = any(
                isinstance(node, ast.Raise)
                for node in ast.walk(handler)
            )
            if not resolves and not reraises:
                yield handler


@register
def rule_future_resolution(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R603: a resolver owns both edges — success *and* exception."""
    for func in ast.walk(checked.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        parent = checked.parent(func)
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs are judged with their enclosing function
        resolutions = _future_calls(func, "set_result")
        if not resolutions:
            continue
        exception_edges = _future_calls(func, "set_exception")
        if not exception_edges and _has_other_call(func):
            yield checked.violation(
                "R603", resolutions[0],
                f"{func.name} resolves futures with set_result() but has "
                "no set_exception() path — a raise before resolution "
                "leaves every awaiter parked forever",
            )
            continue
        seen: Set[int] = set()
        for call in resolutions:
            for handler in _swallowing_handlers(checked, call):
                if handler.lineno in seen:
                    continue
                seen.add(handler.lineno)
                yield checked.violation(
                    "R603", handler,
                    f"this handler swallows the exception while {func.name} "
                    "still holds unresolved futures — set_exception() them "
                    "or re-raise",
                )


# ---------------------------------------------------------------------------
# R604 — table access only from sanctioned server-loop executors
# ---------------------------------------------------------------------------


def _enclosing_qualnames(
    checked: CheckedFile, node: ast.AST
) -> Iterator[str]:
    for ancestor in checked.ancestors(node):
        if not isinstance(ancestor,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        classes = checked.enclosing_classes(ancestor)
        if classes:
            yield f"{classes[0]}.{ancestor.name}"
        yield ancestor.name


def _is_table_handle(receiver: str) -> bool:
    last = receiver.rsplit(".", 1)[-1]
    return last == "table" or last.endswith("_table")


@register
def rule_serve_table_access(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R604: only the batch-executor chain touches the table."""
    if not config.in_async_scope(checked.rel):
        return
    sanctioned = set(config.serve_table_executors)
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in config.table_data_api:
            continue
        receiver = receiver_text(func.value)
        if receiver is None or not _is_table_handle(receiver):
            continue
        if any(name in sanctioned
               for name in _enclosing_qualnames(checked, node)):
            continue
        yield checked.violation(
            "R604", node,
            f"{receiver}.{func.attr}() outside the sanctioned server-loop "
            "executors — route the operation through the micro-batcher "
            "(the event loop serialises table access there)",
        )


# ---------------------------------------------------------------------------
# CLI section (--async-rules)
# ---------------------------------------------------------------------------


def analysis_summary(
    sources: Dict[str, str], config: Optional[CheckConfig] = None
) -> Dict[str, Any]:
    """Aggregate async-analysis statistics for the ``--async-rules`` JSON
    section: how much surface the R6xx rules actually saw. Violations
    themselves flow through the normal engine/baseline pipeline."""
    from repro.check.dataflow import build_project
    from repro.check.engine import CheckedFile as _CheckedFile
    from repro.check.pragmas import parse_pragmas

    if config is None:
        config = CheckConfig()
    files: List[CheckedFile] = []
    spawn_sites = 0
    resolver_functions = 0
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel])
        except SyntaxError:
            continue
        checked = _CheckedFile(rel, sources[rel],
                               tree, parse_pragmas(sources[rel], rel))
        files.append(checked)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_spawn(node):
                spawn_sites += 1
        for node in ast.walk(tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _future_calls(node, "set_result")):
                resolver_functions += 1
    model = build_project(files, config)
    in_scope = [
        info for info in model.functions.values()
        if config.in_async_scope(info.rel)
    ]
    async_defs = [
        info for info in in_scope
        if isinstance(info.node, ast.AsyncFunctionDef)
    ]
    return {
        "scope": list(config.async_scope_prefixes),
        "async_functions": len(async_defs),
        "functions_in_scope": len(in_scope),
        "blocking_sites": sum(
            len(info.blocking) for info in model.functions.values()
        ),
        "blocking_reachable_async": sum(
            1 for info in async_defs if info.blocks_loop
        ),
        "task_spawn_sites": spawn_sites,
        "future_resolver_functions": resolver_functions,
    }
