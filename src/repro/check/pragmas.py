"""``# repro:`` pragma comments: hotpath/arrays markers, noqa suppressions.

Five directives exist; anything else after ``# repro:`` is itself
flagged (R002) so a typo cannot silently disable a rule:

- ``# repro: hotpath`` — marks the *next* ``def`` (trailing anywhere on
  the def's signature lines, or on its own line directly above the def /
  its first decorator) as a hot-path function, enabling the R2xx purity
  rules (and the R703 view-escape rule) on its body.
- ``# repro: arrays(uint64, int64)`` — a dtype contract for the *next*
  ``def`` (same placement as ``hotpath``): every literal ``dtype=`` kwarg
  (and literal ``.astype(...)`` argument) in the body must name one of
  the listed dtypes (R702). At least one dtype is required.
- ``# repro: raises(DuplicateKey, ValueError)`` — the exception contract
  of the *next* ``def`` (same placement): R801 reports any exception
  that can escape the function's body interprocedurally and is covered
  by none of the listed names (a base class covers its subclasses). At
  least one exception name is required. Directives above a def stack:
  several ``# repro:`` comment lines directly above the signature all
  attach to it.
- ``# repro: atomic`` — the *next* ``def`` promises all-or-nothing
  mutation: R803 reports any table write-effect that is reachable
  before a possible exception escape unless a rollback postdominates
  it on the exception edge.
- ``# repro: noqa[R101] -- justification`` — suppresses the named rules
  on that line. The justification after ``--`` is mandatory: a bare noqa
  does not suppress anything and is reported as R001. Several rules may
  be listed (``noqa[R101,R202]``); a family prefix (``noqa[R2]``)
  suppresses every rule in the family.

Comments are read with :mod:`tokenize`, so strings containing ``# repro:``
never register as pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.check.violations import RULE_CATALOGUE, Violation

__all__ = ["Suppression", "PragmaIndex", "parse_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
_NOQA_RE = re.compile(
    r"^noqa\[(?P<codes>[A-Z0-9, ]+)\]\s*(?:--\s*(?P<why>.*))?$"
)
_HOTPATH_RE = re.compile(r"^hotpath\s*$")
_ARRAYS_RE = re.compile(r"^arrays\((?P<names>[A-Za-z0-9_,\s]*)\)\s*$")
_RAISES_RE = re.compile(r"^raises\((?P<names>[A-Za-z0-9_,\s]*)\)\s*$")
_ATOMIC_RE = re.compile(r"^atomic\s*$")


@dataclass
class Suppression:
    """One parsed ``noqa`` directive."""

    codes: Tuple[str, ...]
    justification: str
    line: int
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str) -> bool:
        """True if ``rule`` equals, or extends, one of the codes."""
        return any(rule == code or rule.startswith(code)
                   for code in self.codes)


@dataclass
class PragmaIndex:
    """Every pragma in one file, plus the problems found parsing them."""

    #: line -> suppression active on that line
    noqa: Dict[int, Suppression] = field(default_factory=dict)
    #: lines bearing a ``hotpath`` marker
    hotpath_lines: Set[int] = field(default_factory=set)
    #: line -> dtype names declared by an ``arrays(...)`` contract
    arrays_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> exception names declared by a ``raises(...)`` contract
    raises_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: lines bearing an ``atomic`` marker
    atomic_lines: Set[int] = field(default_factory=set)
    #: malformed/unknown pragmas, reported as violations directly
    problems: List[Violation] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        """Consume a suppression for ``rule`` at ``line`` if one applies."""
        suppression = self.noqa.get(line)
        if suppression is not None and suppression.matches(rule):
            suppression.used = True
            return True
        return False

    def unused(self) -> List[Suppression]:
        """Suppressions that never fired (reported as R003)."""
        return [s for s in self.noqa.values() if not s.used]


def _known_prefix(code: str) -> bool:
    return any(rule == code or rule.startswith(code)
               for rule in RULE_CATALOGUE)


def parse_pragmas(source: str, path: str) -> PragmaIndex:
    """Extract every ``# repro:`` directive from ``source``."""
    index = PragmaIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return index  # the engine reports the parse failure itself (R000)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        col = token.start[1] + 1
        body = match.group("body").strip()
        snippet = token.string.strip()
        if _HOTPATH_RE.match(body):
            index.hotpath_lines.add(line)
            continue
        arrays = _ARRAYS_RE.match(body)
        if arrays is not None:
            names = tuple(
                name.strip() for name in arrays.group("names").split(",")
                if name.strip()
            )
            if not names:
                index.problems.append(Violation(
                    rule="R002", path=path, line=line, col=col,
                    message=(
                        "arrays pragma needs at least one dtype: "
                        "# repro: arrays(uint64, ...)"
                    ),
                    snippet=snippet,
                ))
                continue
            index.arrays_lines[line] = names
            continue
        if _ATOMIC_RE.match(body):
            index.atomic_lines.add(line)
            continue
        raises = _RAISES_RE.match(body)
        if raises is not None:
            names = tuple(
                name.strip() for name in raises.group("names").split(",")
                if name.strip()
            )
            if not names:
                index.problems.append(Violation(
                    rule="R002", path=path, line=line, col=col,
                    message=(
                        "raises pragma needs at least one exception: "
                        "# repro: raises(DuplicateKey, ...)"
                    ),
                    snippet=snippet,
                ))
                continue
            index.raises_lines[line] = names
            continue
        noqa = _NOQA_RE.match(body)
        if noqa is not None:
            codes = tuple(
                code.strip() for code in noqa.group("codes").split(",")
                if code.strip()
            )
            why = (noqa.group("why") or "").strip()
            bogus = [code for code in codes if not _known_prefix(code)]
            if bogus:
                index.problems.append(Violation(
                    rule="R002", path=path, line=line, col=col,
                    message=f"noqa names unknown rule(s) {', '.join(bogus)}",
                    snippet=snippet,
                ))
                continue
            if not why:
                index.problems.append(Violation(
                    rule="R001", path=path, line=line, col=col,
                    message=(
                        "suppression needs a justification: "
                        "# repro: noqa[RULE] -- <why this is sanctioned>"
                    ),
                    snippet=snippet,
                ))
                continue  # an unjustified noqa does not suppress
            index.noqa[line] = Suppression(
                codes=codes, justification=why, line=line,
            )
            continue
        index.problems.append(Violation(
            rule="R002", path=path, line=line, col=col,
            message=f"unknown pragma directive {body.split()[0]!r}"
            if body else "empty pragma directive",
            snippet=snippet,
        ))
    return index
