"""Project-specific static analysis: ``python -m repro.check``.

The repository has three load-bearing promises nothing else verifies
mechanically — the XOR invariant is only mutated through sanctioned write
paths, the observability hooks stay zero-cost when disabled on the
vectorised hot paths, and the concurrency layer follows a single lock
discipline. This package enforces them (plus general hygiene) as an
AST-based linter with repo-specific rules:

- **R1** (``rules_writes``) — value-table write encapsulation,
- **R2** (``rules_hotpath``) — purity of ``# repro: hotpath`` functions,
- **R3** (``rules_locks``) — RWLock context-manager + ordering
  discipline (dynamic counterpart: :mod:`repro.check.lockset`),
- **R4** (``rules_hygiene``) — mutable defaults, runtime asserts,
  ``__all__`` drift.

Suppressions are per-line (``# repro: noqa[R101] -- why``) and require a
justification; pre-existing debt is ratcheted down through a baseline
file (:mod:`repro.check.baseline`). Rule catalogue and workflow:
docs/static_analysis.md.
"""

from repro.check.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from repro.check.cli import main
from repro.check.engine import (
    CheckConfig,
    CheckedFile,
    RULES,
    check_paths,
    check_source,
    iter_python_files,
    module_relpath,
)
from repro.check.lockset import LockDisciplineError, LocksetRWLock
from repro.check.pragmas import PragmaIndex, Suppression, parse_pragmas
from repro.check.violations import RULE_CATALOGUE, Violation

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CheckConfig",
    "CheckedFile",
    "LockDisciplineError",
    "LocksetRWLock",
    "PragmaIndex",
    "RULES",
    "RULE_CATALOGUE",
    "Suppression",
    "Violation",
    "check_paths",
    "check_source",
    "iter_python_files",
    "load_baseline",
    "main",
    "module_relpath",
    "parse_pragmas",
    "write_baseline",
]
