"""Project-specific static analysis: ``python -m repro.check``.

The repository has three load-bearing promises nothing else verifies
mechanically — the XOR invariant is only mutated through sanctioned write
paths, the observability hooks stay zero-cost when disabled on the
vectorised hot paths, and the concurrency layer follows a single lock
discipline. This package enforces them (plus general hygiene) as an
AST-based linter with repo-specific rules:

- **R1** (``rules_writes``) — value-table write encapsulation,
- **R2** (``rules_hotpath``) — purity of ``# repro: hotpath`` functions,
- **R3** (``rules_locks``) — RWLock context-manager + ordering
  discipline (dynamic counterpart: :mod:`repro.check.lockset`),
- **R4** (``rules_hygiene``) — mutable defaults, runtime asserts,
  ``__all__`` drift, stray ``print()``,
- **R5** (``rules_invariant``) — interprocedural XOR-invariant dataflow
  over the write paths (:mod:`repro.check.dataflow`),
- **R8** (``rules_exceptions`` + ``rules_resources``) —
  exception-contract dataflow (``# repro: raises(...)`` coverage, serve
  error-table exhaustiveness, ``# repro: atomic`` rollback discipline)
  and OS-resource lifecycle / corruption-swallow rules.

Beyond the static rules, three dynamic checkers share the same CLI: the
vector-clock race detector (:mod:`repro.check.vectorclock`, ``--races``),
the deterministic schedule explorer (:mod:`repro.check.scheduler`,
``--explore``), and the fault-injection explorer
(:mod:`repro.check.faultinject`, ``--inject``) — the runtime proof of
the all-or-nothing guarantee the R8xx rules argue statically.

Suppressions are per-line (``# repro: noqa[R101] -- why``) and require a
justification; pre-existing debt is ratcheted down through a baseline
file (:mod:`repro.check.baseline`). Rule catalogue and workflow:
docs/static_analysis.md.
"""

from repro.check.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    write_baseline,
)
from repro.check.cli import main
from repro.check.dataflow import ProjectModel, build_project, catches
from repro.check.engine import (
    CheckConfig,
    CheckedFile,
    PROJECT_RULES,
    RULES,
    check_paths,
    check_source,
    check_sources,
    iter_python_files,
    module_relpath,
)
from repro.check.faultinject import (
    FaultCase,
    InjectionOutcome,
    InjectionSite,
    default_cases,
    discover_sites,
    replay_site,
    run_case_sweep,
    run_sweep,
)
from repro.check.lockset import LockDisciplineError, LocksetRWLock
from repro.check.pragmas import PragmaIndex, Suppression, parse_pragmas
from repro.check.scheduler import (
    CooperativeMutex,
    CooperativeRWLock,
    ExplorationResult,
    Scenario,
    ScheduleError,
    ScheduleResult,
    SchedulerRun,
    YieldingValueTable,
    embedder_scenario,
    explore,
    gate_bypass_scenario,
    run_schedule,
)
from repro.check.vectorclock import (
    BENIGN_RACES,
    ClockedMutex,
    ClockedRWLock,
    ClockedValueTable,
    RaceDetector,
    RaceRecord,
    TracedThread,
    VectorClock,
    instrument_concurrent,
)
from repro.check.violations import RULE_CATALOGUE, Violation

__all__ = [
    "BENIGN_RACES",
    "Baseline",
    "BaselineEntry",
    "CheckConfig",
    "CheckedFile",
    "ClockedMutex",
    "ClockedRWLock",
    "ClockedValueTable",
    "CooperativeMutex",
    "CooperativeRWLock",
    "ExplorationResult",
    "FaultCase",
    "InjectionOutcome",
    "InjectionSite",
    "LockDisciplineError",
    "LocksetRWLock",
    "PROJECT_RULES",
    "PragmaIndex",
    "ProjectModel",
    "RULES",
    "RULE_CATALOGUE",
    "RaceDetector",
    "RaceRecord",
    "Scenario",
    "ScheduleError",
    "ScheduleResult",
    "SchedulerRun",
    "Suppression",
    "TracedThread",
    "VectorClock",
    "Violation",
    "YieldingValueTable",
    "build_project",
    "catches",
    "check_paths",
    "check_source",
    "check_sources",
    "default_cases",
    "discover_sites",
    "embedder_scenario",
    "explore",
    "gate_bypass_scenario",
    "instrument_concurrent",
    "iter_python_files",
    "load_baseline",
    "main",
    "module_relpath",
    "parse_pragmas",
    "replay_site",
    "run_case_sweep",
    "run_schedule",
    "run_sweep",
    "write_baseline",
]
