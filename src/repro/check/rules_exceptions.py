"""R8xx (static half) — interprocedural exception-contract rules.

The reliability claim of the paper ("rare failure") rests on every
mutation path either fully applying or cleanly failing. The R1xx/R5xx
rules police *where* cells are written; these rules police what happens
on the way *out* — which exceptions can escape which functions, built on
the raises effect-sets :mod:`repro.check.dataflow` propagates over the
call graph:

- **R801** — a public function of an exception-contract module
  (embedder/sharded/persist) with a non-empty escape set must declare
  every escapable exception in a ``# repro: raises(...)`` pragma (a
  declared base class covers its subclasses). The diagnostic carries the
  witness chain down to the actual ``raise`` statement, however many
  frames down it sits.
- **R802** — the serve error table in ``protocol.py`` must be exhaustive
  over the set of exceptions escapable from the server's table
  executors and the table classes' wire-reachable methods: an unmapped
  exception reaches the wire as a generic 500 and the client cannot
  rebuild the library type.
- **R803** — a ``# repro: atomic`` function may not have a cell/plane
  write-effect (direct, or through a resolved call — the R5xx
  summaries) reachable while an exception can still escape, unless a
  rollback call (``config.atomic_rollbacks``) postdominates the write
  on the exception edge (handler/``finally`` of an enclosing ``try``).
  Write sites that *are* recovery code (inside a handler or ``finally``)
  are the rollback and are exempt, as are calls that resolve only to
  the public mutation API (each callee is its own atomic front door).

The dynamic counterpart — proving at runtime what R803 claims statically
— is :mod:`repro.check.faultinject`.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.check.dataflow import (
    FunctionInfo,
    ProjectModel,
    catches,
)
from repro.check.engine import (
    CheckConfig,
    CheckedFile,
    register_project,
)
from repro.check.violations import Violation

__all__ = [
    "analysis_summary",
    "check_atomic_rollbacks",
    "check_error_table_exhaustive",
    "check_exception_contracts",
]


@register_project
def check_exception_contracts(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R801: escapable exception not covered by the raises contract."""
    for info in model.functions.values():
        if not config.is_contract_module(info.rel) or not info.is_public:
            continue
        if not info.escapes:
            continue
        declared = info.checked.raises_contract(info.node) or ()
        for exc, witness in sorted(info.escapes.items()):
            if any(catches(exc, name, model.exception_bases)
                   for name in declared):
                continue
            hint = (
                f"add it to the contract ({', '.join(declared)})"
                if declared else
                "declare the contract with # repro: raises(...)"
            )
            yield info.checked.violation(
                "R801", info.node,
                f"{exc} can escape {info.qualname} but is not in its "
                f"raises(...) contract — {hint}; witness: {witness}",
            )


def _error_table_entries(
    checked: CheckedFile, table_name: str
) -> Tuple[Optional[ast.stmt], List[str]]:
    """The ``_ERROR_TABLE`` assignment and the exception names it maps."""
    for stmt in checked.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == table_name
                   for t in targets):
            continue
        names: List[str] = []
        for node in ast.walk(value):
            if not isinstance(node, ast.Tuple) or not node.elts:
                continue
            first = node.elts[0]
            if isinstance(first, ast.Name):
                names.append(first.id)
            elif isinstance(first, ast.Attribute):
                names.append(first.attr)
        return stmt, names
    return None, []


def _wire_escapes(
    model: ProjectModel, config: CheckConfig
) -> Dict[str, str]:
    """Union of escape sets over everything the wire can reach: the
    server's sanctioned table executors plus the table classes' wire
    methods (the executors call those through ``self.table.<m>``, an
    attribute call name-based resolution deliberately leaves
    unresolved)."""
    escapable: Dict[str, str] = {}
    executors = set(config.serve_table_executors)
    for info in model.functions.values():
        is_executor = info.qualname in executors
        is_wire_method = (
            info.class_name in config.serve_table_classes
            and info.name in config.serve_wire_methods
        )
        if not (is_executor or is_wire_method):
            continue
        for exc, witness in info.escapes.items():
            escapable.setdefault(exc, f"{info.qualname}: {witness}")
    return escapable


@register_project
def check_error_table_exhaustive(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R802: the serve error table misses an escapable exception."""
    protocol = None
    for rel, checked in model.files.items():
        if rel.endswith(config.serve_protocol_module):
            protocol = checked
            break
    if protocol is None:
        return
    table_stmt, mapped = _error_table_entries(
        protocol, config.serve_error_table_name
    )
    if table_stmt is None:
        return
    # ServeError subclasses carry their own status/code and are mapped
    # by the isinstance branch of error_response before the table runs.
    mapped = mapped + ["ServeError"]
    for exc, witness in sorted(_wire_escapes(model, config).items()):
        if any(catches(exc, name, model.exception_bases)
               for name in mapped):
            continue
        yield protocol.violation(
            "R802", table_stmt,
            f"{exc} can escape the serve table executors but has no "
            f"entry in {config.serve_error_table_name} — it would reach "
            f"the wire as a generic 500; escape path: {witness}",
        )


def _in_recovery_block(checked: CheckedFile, site: ast.AST) -> bool:
    """True if ``site`` sits inside an ``except`` handler or ``finally``
    block — it *is* the rollback/cleanup code, not the protected write."""
    child: ast.AST = site
    for ancestor in checked.ancestors(site):
        if isinstance(ancestor, ast.ExceptHandler):
            return True
        if isinstance(ancestor, ast.Try) and any(
            child is stmt for stmt in ancestor.finalbody
        ):
            return True
        child = ancestor
    return False


def _atomic_protected(
    checked: CheckedFile, site: ast.AST, config: CheckConfig
) -> bool:
    """True if ``site`` sits in a ``try`` body whose handlers (or
    ``finally``) contain a rollback call (``config.atomic_rollbacks``)."""
    child: ast.AST = site
    for ancestor in checked.ancestors(site):
        if isinstance(ancestor, ast.Try) and any(
            child is stmt for stmt in ancestor.body
        ):
            recovery: List[ast.AST] = list(ancestor.handlers)
            recovery.extend(ancestor.finalbody)
            for block in recovery:
                for node in ast.walk(block):
                    if not isinstance(node, ast.Call):
                        continue
                    if isinstance(node.func, ast.Attribute):
                        name = node.func.attr
                    elif isinstance(node.func, ast.Name):
                        name = node.func.id
                    else:
                        continue
                    if name in config.atomic_rollbacks:
                        return True
        child = ancestor
    return False


@register_project
def check_atomic_rollbacks(
    model: ProjectModel, config: CheckConfig
) -> Iterator[Violation]:
    """R803: atomic function with an unprotected pre-escape write."""
    for info in model.functions.values():
        checked = info.checked
        if not checked.is_atomic(info.node):
            continue
        if not info.escapes:
            continue  # nothing can escape: trivially all-or-nothing
        effects: List[Tuple[ast.AST, str]] = [
            (site.node, site.detail) for site in info.effective_writes()
        ]
        for call in info.calls:
            writers = call.writing_targets()
            if not writers:
                continue
            if all(writer.name in config.public_mutation_api
                   for writer in writers):
                continue  # delegation: the callee is its own atomic unit
            effects.append((
                call.node,
                f"{call.callee}() -> {writers[0].write_witness}",
            ))
        escapes = ", ".join(sorted(info.escapes))
        for node, detail in effects:
            if _in_recovery_block(checked, node):
                continue
            if _atomic_protected(checked, node, config):
                continue
            yield checked.violation(
                "R803", node,
                f"'# repro: atomic' function {info.qualname} reaches a "
                f"table write via {detail} while {escapes} can still "
                "escape, with no rollback on the exception edge — wrap "
                "the write in try/except (or finally) restoring the "
                "pre-call state",
            )


# ---------------------------------------------------------------------------
# CLI section (--exceptions)
# ---------------------------------------------------------------------------


def analysis_summary(
    sources: Dict[str, str], config: Optional[CheckConfig] = None
) -> Dict[str, Any]:
    """Aggregate exception-contract statistics for the ``--exceptions``
    JSON section: how much surface the R8xx static rules actually saw.
    Violations themselves flow through the normal engine pipeline."""
    from repro.check.dataflow import build_project
    from repro.check.engine import CheckedFile as _CheckedFile
    from repro.check.pragmas import parse_pragmas

    if config is None:
        config = CheckConfig()
    files: List[CheckedFile] = []
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel])
        except SyntaxError:
            continue
        files.append(_CheckedFile(rel, sources[rel], tree,
                                  parse_pragmas(sources[rel], rel)))
    model = build_project(files, config)
    contract_functions: List[FunctionInfo] = [
        info for info in model.functions.values()
        if config.is_contract_module(info.rel) and info.is_public
    ]
    declared = [
        info for info in contract_functions
        if info.checked.raises_contract(info.node) is not None
    ]
    atomic = [
        info for info in model.functions.values()
        if info.checked.is_atomic(info.node)
    ]
    distinct = {
        exc for info in model.functions.values() for exc in info.escapes
    }
    return {
        "contract_modules": list(config.exception_contract_modules),
        "public_contract_functions": len(contract_functions),
        "declared_contracts": len(declared),
        "atomic_functions": len(atomic),
        "raise_sites": sum(
            len(info.raises) for info in model.functions.values()
        ),
        "escaping_functions": sum(
            1 for info in model.functions.values() if info.escapes
        ),
        "distinct_escaping_exceptions": sorted(distinct),
        "wire_escapes": sorted(_wire_escapes(model, config)),
    }
