"""R8xx (resource half) — OS-resource lifecycle and corruption masking.

Two per-file rules complete the R8xx family:

- **R804** — a call that acquires an OS resource (``open``, sockets,
  executors, ``mmap``, HTTP connections, subprocesses) outside a
  ``with`` block must be bound to a name that has a ``close()`` /
  ``shutdown()`` / ``terminate()`` call on it somewhere in the file
  (``self._conn = HTTPConnection(...)`` in ``__init__`` paired with
  ``self._conn.close()`` in ``close()`` passes). An unbound acquisition
  (``open(p).read()``) or one with no closer leaks the handle on every
  exception path — prefer ``with``; a deliberate hand-off needs a
  ``noqa[R804]`` justification.
- **R805** — an ``except`` clause that names a table-corruption
  exception (``AssertionError``, ``ReconstructionFailed``,
  ``CorruptSnapshotError``) or a blanket base (``Exception``,
  ``BaseException``, bare ``except:``) may not *silently* swallow it: a
  handler body with no ``raise``, no call, and no control-flow exit
  masks a broken ``A1^A2^A3`` invariant or a half-read snapshot.
  Logging, re-raising, returning a sentinel, recording the exception
  (``task.error = exc``), or ``continue``-ing a retry loop all count as
  handling; only the silent ``pass`` shape is flagged, and a justified ``noqa[R805]`` sanctions the rare teardown
  path that really must drop everything.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional

from repro.check.dataflow import handler_names, receiver_text
from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = [
    "analysis_summary",
    "check_corruption_swallow",
    "check_resource_lifecycle",
]

#: blanket handler types that catch the corruption exceptions too.
_SWALLOW_BASES = ("Exception", "BaseException")


def _callee_text(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return receiver_text(node.func)
    return None


def _with_managed_calls(checked: CheckedFile) -> "set[int]":
    """ids of every Call node inside a ``with`` item's context expr."""
    managed: "set[int]" = set()
    for node in ast.walk(checked.tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Call):
                        managed.add(id(sub))
    return managed


def _closed_receivers(
    checked: CheckedFile, config: CheckConfig
) -> "set[str]":
    """Dotted receivers a closer call releases, anywhere in the file."""
    closed: "set[str]" = set()
    for node in ast.walk(checked.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in config.resource_closers):
            receiver = receiver_text(node.func.value)
            if receiver is not None:
                closed.add(receiver)
    return closed


@register
def check_resource_lifecycle(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R804: resource acquired outside ``with`` and never closed."""
    managed = _with_managed_calls(checked)
    closed = _closed_receivers(checked, config)
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.Call) or id(node) in managed:
            continue
        callee = _callee_text(node)
        if callee is None or not config.is_resource_factory(callee):
            continue
        parent = checked.parent(node)
        target: Optional[str] = None
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = receiver_text(parent.targets[0])
        elif isinstance(parent, ast.AnnAssign):
            target = receiver_text(parent.target)
        if target is not None and target in closed:
            continue
        where = (
            f"bound to {target} which is never closed" if target
            else "not bound to a closable name"
        )
        yield checked.violation(
            "R804", node,
            f"{callee}() acquires an OS resource outside 'with' and "
            f"{where} — manage it with 'with', or pair the binding with "
            "a close()/shutdown() on every path",
        )


def _is_silent(body: List[ast.stmt]) -> bool:
    """True if the handler body neither raises, calls, exits, nor
    records anything (``task.error = exc`` is handling)."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call, ast.Return,
                                 ast.Continue, ast.Break, ast.Assign,
                                 ast.AugAssign, ast.AnnAssign)):
                return False
    return True


@register
def check_corruption_swallow(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R805: silent handler swallowing a table-corruption exception."""
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = handler_names(node)
        if not any(name in config.corruption_exceptions
                   or name in _SWALLOW_BASES for name in names):
            continue
        if not _is_silent(node.body):
            continue
        caught = ", ".join(names) if names else "everything"
        yield checked.violation(
            "R805", node,
            f"except ({caught}) silently swallows table-corruption "
            "exceptions — re-raise, log, or route the failure; a broken "
            "invariant masked here surfaces as wrong lookups later",
        )


# ---------------------------------------------------------------------------
# CLI section (--resources)
# ---------------------------------------------------------------------------


def analysis_summary(
    sources: Dict[str, str], config: Optional[CheckConfig] = None
) -> Dict[str, Any]:
    """Aggregate resource-lifecycle statistics for the ``--resources``
    JSON section. Violations themselves flow through the engine."""
    from repro.check.pragmas import parse_pragmas

    if config is None:
        config = CheckConfig()
    files_scanned = 0
    factory_sites = 0
    with_managed = 0
    closer_calls = 0
    swallow_handlers = 0
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel])
        except SyntaxError:
            continue
        checked = CheckedFile(rel, sources[rel], tree,
                              parse_pragmas(sources[rel], rel))
        files_scanned += 1
        managed = _with_managed_calls(checked)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = _callee_text(node)
                if callee is not None and config.is_resource_factory(callee):
                    factory_sites += 1
                    if id(node) in managed:
                        with_managed += 1
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in config.resource_closers):
                    closer_calls += 1
            elif isinstance(node, ast.ExceptHandler):
                if any(name in config.corruption_exceptions
                       or name in _SWALLOW_BASES
                       for name in handler_names(node)):
                    swallow_handlers += 1
    return {
        "files_scanned": files_scanned,
        "resource_factory_sites": factory_sites,
        "with_managed": with_managed,
        "closer_calls": closer_calls,
        "corruption_catching_handlers": swallow_handlers,
    }
