"""Violation records produced by the ``repro.check`` rules.

A violation is one rule firing at one source location. Its *fingerprint*
identifies the finding across unrelated edits — it hashes the file, the
rule, and the stripped source line rather than the line *number*, so a
baselined violation stays recognised when code above it moves, and stops
matching the moment the offending line itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Violation", "RULE_CATALOGUE"]


#: rule id -> one-line description (the catalogue ``--list-rules`` prints;
#: docs/static_analysis.md is the long-form reference).
RULE_CATALOGUE: Dict[str, str] = {
    "R000": "file could not be parsed (syntax error)",
    "R001": "repro: noqa suppression without a justification",
    "R002": "unknown 'repro:' pragma directive",
    "R003": "unused 'repro: noqa' suppression",
    "R101": "value-table cell storage written outside the sanctioned "
            "write-path modules",
    "R201": "hotpath function allocates a dict/set inside a loop",
    "R202": "hotpath function calls hooks without an 'is not None' guard",
    "R203": "hotpath function uses a bare 'except:'",
    "R204": "hotpath function calls the random/time modules directly "
            "instead of an injected RNG/clock",
    "R301": "raw RWLock acquire_*/release_* call outside the lock's own "
            "context-manager helpers",
    "R302": "multi-lock acquisition loop not iterating in sorted order",
    "R401": "mutable default argument",
    "R402": "assert used for runtime validation outside a check_* helper",
    "R403": "package __init__ __all__ drift (stale or missing export)",
    "R404": "print() in library code outside a CLI module — route output "
            "through repro.obs",
    "R501": "cell-write effect after an assistant-table registration "
            "without an exception-edge rollback (XOR invariant can leak)",
    "R502": "call reaching value-table cell writes from outside the "
            "sanctioned write-path modules (use the public mutation API)",
    "R503": "per-cell table write inside a loop outside a sanctioned "
            "all-or-nothing applier (partial application hazard)",
    "R601": "blocking call (time.sleep, file/socket I/O, subprocess, "
            "lock .acquire()) reachable from an async def in the serve "
            "scope — it stalls every request on the event loop",
    "R602": "orphan asyncio task: create_task/ensure_future result "
            "neither awaited, cancelled, nor given a done-callback",
    "R603": "parked Future not resolved on every path: set_result() "
            "without a set_exception() exception edge",
    "R604": "table data access outside the sanctioned server-loop "
            "executor functions (the event loop is the table's lock)",
    "R701": "in-place mutation of an array derived as a view of "
            "value-table plane storage outside the plane-owner modules",
    "R702": "literal dtype disagrees with the function's "
            "'# repro: arrays(...)' dtype contract",
    "R703": "hotpath function lets a view of plane storage escape "
            "without an explicit .copy()",
    "R801": "exception escaping a public API function not covered by its "
            "'# repro: raises(...)' contract",
    "R802": "serve error table not exhaustive: an exception escapable "
            "from the server's table executors has no wire code mapping",
    "R803": "'# repro: atomic' function has a table write-effect "
            "reachable before a possible escape without a rollback on "
            "the exception edge",
    "R804": "resource (file/socket/executor/mmap) acquired outside "
            "'with' without a close() on the exception edge",
    "R805": "except block swallows a table-corruption exception "
            "(AssertionError/ReconstructionFailed/CorruptSnapshotError) "
            "without re-raising or handling it",
}


@dataclass(frozen=True)
class Violation:
    """One rule firing at one location.

    ``path`` is the module-relative posix path (``repro/core/update.py``),
    ``snippet`` the stripped source line the rule fired on.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Stable id for baseline matching (content-, not line-, based)."""
        digest = hashlib.sha256(
            f"{self.path}::{self.rule}::{self.snippet}".encode()
        )
        return digest.hexdigest()[:16]

    def render(self) -> str:
        """The one-line ``path:line:col: RULE message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }
