"""Systematic fault injection: the dynamic proof behind ``# repro: atomic``.

The R8xx static rules argue that every mutating operation either fully
applies or cleanly fails. This module *demonstrates* it: run a canned
deterministic operation once under :func:`sys.settrace` to discover
every executed line in ``repro/core`` (the happy path), then re-run it
once per site with a ``MemoryError`` or ``OSError`` injected at exactly
that line — the faults a real process meets (allocator pressure, a disk
hiccup inside a snapshot write) at the places it meets them.

After each injected run the harness asserts the two halves of the strong
exception guarantee:

- **consistency** — :meth:`VisionEmbedder.check_invariants` still holds
  (``A1 ^ A2 ^ A3`` answers every live key);
- **bit-equality** — the table state (seed, dense cell planes, sorted
  assistant pairs) equals either the pre-operation snapshot (the fault
  rolled back) or the no-fault reference result (the fault landed after
  the commit point). Anything else is a torn state.

Every run is replayable: a site id like ``repro/core/update.py:123#0``
(file, line, zero-based occurrence of that line on the happy path) plus
the case name pins the exact execution. The injected exception type
alternates deterministically by site parity, so a given site id always
injects the same fault. ``python -m repro.check --inject`` drives the
sweep; ``--inject-site`` replays one site.

``try:`` and ``except ...:`` header lines are excluded from the site
set: under CPython's zero-cost exception handling they compile to no
executing operation (nothing real can raise *there*), and an exception
synthesised by the trace function at such a line falls outside the
frame's exception table — it would bypass the very handler being
tested, a failure mode no genuine fault can produce.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from types import FrameType
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple, Type

from repro.core.config import EmbedderConfig
from repro.core.embedder import VisionEmbedder

__all__ = [
    "FaultCase",
    "InjectionOutcome",
    "InjectionSite",
    "default_cases",
    "discover_sites",
    "injected_exception_type",
    "replay_site",
    "report_json",
    "run_case_sweep",
    "run_sweep",
]

#: path fragment selecting the frames worth injecting into.
_SCOPE_MARKER = "/repro/core/"

_SITE_ID_RE = re.compile(
    r"^(?P<file>.+):(?P<line>\d+)#(?P<occurrence>\d+)$"
)

#: the two faults a healthy process actually meets mid-operation.
_FAULT_TYPES: Tuple[Type[BaseException], Type[BaseException]] = (
    MemoryError,
    OSError,
)


def _site_file(filename: str) -> Optional[str]:
    """Repo-relative ``repro/core/...`` path, or ``None`` if out of scope."""
    norm = filename.replace("\\", "/")
    pos = norm.rfind(_SCOPE_MARKER)
    if pos < 0:
        return None
    return norm[pos + 1:]


#: per-file cache of structural (non-executing) header lines.
_STRUCTURAL_CACHE: Dict[str, FrozenSet[int]] = {}


def _structural_lines(filename: str) -> FrozenSet[int]:
    """Lines holding ``try:`` / ``except ...:`` headers — not injectable
    (no executing operation; see the module docstring)."""
    cached = _STRUCTURAL_CACHE.get(filename)
    if cached is not None:
        return cached
    lines: set[int] = set()
    try:
        with open(filename, encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
    except (OSError, SyntaxError, ValueError):
        tree = None
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Try, ast.ExceptHandler)):
                lines.add(node.lineno)
    frozen = frozenset(lines)
    _STRUCTURAL_CACHE[filename] = frozen
    return frozen


def _observe(
    counts: Dict[Tuple[str, int], int], frame: FrameType
) -> Optional[Tuple[str, int, int]]:
    """Count one line event; ``(file, line, occurrence)`` when the line
    is an injectable in-scope site, ``None`` otherwise. Discovery and
    injection share this so their occurrence numbering always aligns."""
    rel = _site_file(frame.f_code.co_filename)
    if rel is None:
        return None
    if frame.f_lineno in _structural_lines(frame.f_code.co_filename):
        return None
    key = (rel, frame.f_lineno)
    occurrence = counts.get(key, 0)
    counts[key] = occurrence + 1
    return rel, frame.f_lineno, occurrence


@dataclass(frozen=True)
class InjectionSite:
    """One traced (file, line, occurrence) triple on the happy path."""

    file: str
    line: int
    occurrence: int

    @property
    def site_id(self) -> str:
        return f"{self.file}:{self.line}#{self.occurrence}"

    @classmethod
    def parse(cls, site_id: str) -> "InjectionSite":
        match = _SITE_ID_RE.match(site_id)
        if match is None:
            raise ValueError(
                f"malformed site id {site_id!r} "
                "(expected path/to/file.py:LINE#OCCURRENCE)"
            )
        return cls(
            file=match.group("file"),
            line=int(match.group("line")),
            occurrence=int(match.group("occurrence")),
        )


def injected_exception_type(site: InjectionSite) -> Type[BaseException]:
    """Deterministic fault type for a site (parity of line+occurrence)."""
    return _FAULT_TYPES[(site.line + site.occurrence) % 2]


@dataclass
class FaultCase:
    """A deterministic operation to torture: builder plus mutator.

    ``build`` must return an identically-seeded table on every call and
    ``operate`` must be deterministic given that table — the sweep
    relies on the discovery run and every injected run walking the same
    happy path.
    """

    name: str
    build: Callable[[], VisionEmbedder]
    operate: Callable[[VisionEmbedder], None]


@dataclass
class InjectionOutcome:
    """What one injected run did to the table."""

    case: str
    site_id: str
    injected: str
    fired: bool
    raised: str
    state: str  # "pre" | "post" | "diverged"
    consistent: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        """The strong guarantee held: the fault fired, escaped to the
        caller, the invariants still hold, and the table is bit-equal
        to the pre- or post-operation state."""
        return (
            self.fired
            and bool(self.raised)
            and self.consistent
            and self.state in ("pre", "post")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "site": self.site_id,
            "injected": self.injected,
            "fired": self.fired,
            "raised": self.raised,
            "state": self.state,
            "consistent": self.consistent,
            "ok": self.ok,
            "detail": self.detail,
        }


Fingerprint = Tuple[int, bytes, Tuple[Tuple[int, int], ...]]


def _fingerprint(table: VisionEmbedder) -> Fingerprint:
    """Bit-exact table identity: seed, dense cell planes, live pairs."""
    return (
        table.seed,
        table._table.to_dense().tobytes(),
        tuple(sorted(table._assistant.pairs())),
    )


def discover_sites(case: FaultCase) -> List[InjectionSite]:
    """Trace one no-fault run; every executed in-scope line is a site."""
    table = case.build()
    counts: Dict[Tuple[str, int], int] = {}
    sites: List[InjectionSite] = []

    def local(frame: FrameType, event: str, arg: Any) -> Any:
        if event == "line":
            observed = _observe(counts, frame)
            if observed is not None:
                sites.append(InjectionSite(*observed))
        return local

    def tracer(frame: FrameType, event: str, arg: Any) -> Any:
        if _site_file(frame.f_code.co_filename) is None:
            return None
        return local

    previous = sys.gettrace()
    sys.settrace(tracer)
    try:
        case.operate(table)
    finally:
        sys.settrace(previous)
    return sites


def _run_injection(
    case: FaultCase,
    site: InjectionSite,
    pre: Fingerprint,
    post: Fingerprint,
) -> InjectionOutcome:
    table = case.build()
    fault_type = injected_exception_type(site)
    counts: Dict[Tuple[str, int], int] = {}
    fired = False

    def local(frame: FrameType, event: str, arg: Any) -> Any:
        nonlocal fired
        if event == "line" and not fired:
            observed = _observe(counts, frame)
            if observed == (site.file, site.line, site.occurrence):
                fired = True
                raise fault_type(f"fault injected at {site.site_id}")
        return local

    def tracer(frame: FrameType, event: str, arg: Any) -> Any:
        if _site_file(frame.f_code.co_filename) is None:
            return None
        return local

    raised = ""
    detail = ""
    previous = sys.gettrace()
    try:
        sys.settrace(tracer)
        try:
            case.operate(table)
        finally:
            sys.settrace(previous)
    except BaseException as exc:
        raised = type(exc).__name__
        detail = str(exc)

    now = _fingerprint(table)
    if now == pre:
        state = "pre"
    elif now == post:
        state = "post"
    else:
        state = "diverged"
    try:
        table.check_invariants()
        consistent = True
    except AssertionError as exc:
        consistent = False
        broken = f"invariant broken: {exc}"
        detail = f"{detail}; {broken}" if detail else broken
    if fired and not raised:
        note = "injected fault was swallowed inside the operation"
        detail = f"{detail}; {note}" if detail else note
    return InjectionOutcome(
        case=case.name,
        site_id=site.site_id,
        injected=fault_type.__name__,
        fired=fired,
        raised=raised,
        state=state,
        consistent=consistent,
        detail=detail,
    )


def _reference_states(case: FaultCase) -> Tuple[Fingerprint, Fingerprint]:
    """(pre, post) fingerprints of one clean, uninjected run."""
    reference = case.build()
    pre = _fingerprint(reference)
    case.operate(reference)
    post = _fingerprint(reference)
    return pre, post


def _sample(
    sites: List[InjectionSite], max_sites: int
) -> List[InjectionSite]:
    """Deterministic even spread over the happy path (``0`` = all)."""
    if max_sites <= 0 or len(sites) <= max_sites:
        return sites
    stride = -(-len(sites) // max_sites)  # ceil division
    return sites[::stride][:max_sites]


def run_case_sweep(
    case: FaultCase, max_sites: int = 0
) -> List[InjectionOutcome]:
    """Inject at (a spread of) every happy-path site of one case."""
    sites = _sample(discover_sites(case), max_sites)
    pre, post = _reference_states(case)
    return [_run_injection(case, site, pre, post) for site in sites]


def run_sweep(
    cases: Optional[List[FaultCase]] = None, max_sites: int = 0
) -> List[InjectionOutcome]:
    """The full sweep: every case, ``max_sites`` injections each."""
    outcomes: List[InjectionOutcome] = []
    for case in cases if cases is not None else default_cases():
        outcomes.extend(run_case_sweep(case, max_sites))
    return outcomes


def replay_site(case_name: str, site_id: str) -> InjectionOutcome:
    """Re-run exactly one injection, e.g. from a CI failure report."""
    by_name = {case.name: case for case in default_cases()}
    if case_name not in by_name:
        raise ValueError(
            f"unknown fault case {case_name!r}; "
            f"known: {sorted(by_name)}"
        )
    case = by_name[case_name]
    site = InjectionSite.parse(site_id)
    pre, post = _reference_states(case)
    return _run_injection(case, site, pre, post)


def report_json(outcomes: List[InjectionOutcome]) -> Dict[str, Any]:
    """The ``repro-faultinject/1`` report (CI uploads this as-is)."""
    per_case: Dict[str, Dict[str, int]] = {}
    for outcome in outcomes:
        bucket = per_case.setdefault(
            outcome.case, {"sites": 0, "failures": 0}
        )
        bucket["sites"] += 1
        if not outcome.ok:
            bucket["failures"] += 1
    failures = [o for o in outcomes if not o.ok]
    return {
        "format": "repro-faultinject/1",
        "total_sites": len(outcomes),
        "failures": len(failures),
        "cases": per_case,
        "failure_reports": [o.to_dict() for o in failures[:25]],
        "outcomes": [o.to_dict() for o in outcomes],
    }


# ---------------------------------------------------------------------------
# Canned cases: the three atomic pillars, on both execution backends
# ---------------------------------------------------------------------------


def _seeded_table(
    backend: str, prefill: int, capacity: int = 96
) -> VisionEmbedder:
    table = VisionEmbedder(
        capacity, 16, config=EmbedderConfig(backend=backend), seed=7
    )
    for i in range(prefill):
        table.insert(i + 1, (i * 31 + 5) % 65536)
    return table


def _batch_payload(count: int) -> Tuple[List[int], List[int]]:
    keys = [1000 + i for i in range(count)]
    values = [(i * 131 + 17) % 65536 for i in range(count)]
    return keys, values


def _insert_batch_case(backend: str) -> FaultCase:
    def operate(table: VisionEmbedder) -> None:
        keys, values = _batch_payload(16)
        table.insert_batch(keys, values)

    return FaultCase(
        name=f"insert_batch-{backend}",
        build=lambda: _seeded_table(backend, prefill=24),
        operate=operate,
    )


def _bulk_load_case(backend: str) -> FaultCase:
    def operate(table: VisionEmbedder) -> None:
        keys, values = _batch_payload(24)
        table.bulk_load(list(zip(keys, values)))

    return FaultCase(
        name=f"bulk_load-{backend}",
        build=lambda: _seeded_table(backend, prefill=8),
        operate=operate,
    )


def _reconstruct_case(backend: str) -> FaultCase:
    return FaultCase(
        name=f"reconstruct-{backend}",
        build=lambda: _seeded_table(backend, prefill=24),
        operate=lambda table: table.reconstruct("dynamic"),
    )


def _shared_planes_case() -> FaultCase:
    """Promote → reader attach/read → batch insert → demote.

    Sweeps the shared-memory plane lifecycle (segment create, dense
    promote, reader attach + seqlock reads, the full update path landing
    in shared storage, demote back to private planes). A fault anywhere
    must leave the table bit-equal to the pre- or post-insert state —
    mid-promote faults destroy the partial segments and re-raise
    (``share_table``), mid-insert faults ride the existing rollback
    machinery, now through :class:`SharedPlanes` duck methods.
    """
    from repro.core.shared_planes import (
        SharedPlanes,
        share_table,
        unshare_table,
    )

    def operate(table: VisionEmbedder) -> None:
        spec = share_table(table)
        try:
            reader = SharedPlanes.attach(spec.shards[0])
            try:
                reader.to_dense()
                reader.get((0, 3))
            finally:
                reader.close()
            keys, values = _batch_payload(8)
            table.insert_batch(keys, values)
        finally:
            unshare_table(table)

    return FaultCase(
        name="shared_planes-scalar",
        build=lambda: _seeded_table("scalar", prefill=24),
        operate=operate,
    )


def default_cases() -> List[FaultCase]:
    """The canned sweep: batch insert, bulk load, and reconstruct, on
    the scalar and vector backends (reconstruct runs scalar only — its
    rebuild is backend-independent re-insertion), plus the shared-memory
    plane lifecycle (promote, reader reads, insert-through-shared,
    demote)."""
    return [
        _insert_batch_case("scalar"),
        _insert_batch_case("vector"),
        _bulk_load_case("scalar"),
        _bulk_load_case("vector"),
        _reconstruct_case("scalar"),
        _shared_planes_case(),
    ]
