"""R4 — general hygiene rules.

- R401: mutable default arguments (``def f(x=[])``) — the shared-state
  classic; use ``None`` plus an in-body default.
- R402: ``assert`` used for runtime validation in library code. Asserts
  vanish under ``python -O``, so anything that guards real behaviour must
  raise. Debug validators are exempt by name: functions matching the
  configured pattern (``check_*``, ``*invariant*``, ``*consisten*``,
  ``*verify*``) exist precisely to assert and are documented as such.
- R403: ``__all__`` drift in package ``__init__`` modules — a name listed
  but never bound (stale export), a public binding missing from the list,
  or a package ``__init__`` with public imports and no ``__all__`` at all
  (CONTRIBUTING mandates module-level ``__all__`` in package inits).
- R404: ``print()`` in library code. Only CLI modules (``cli.py`` /
  ``__main__.py``) own stdout; everything else reports through the
  ``repro.obs`` hooks/exporters so output stays machine-consumable and
  library importers keep a quiet stdout.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Union

from repro.check.engine import CheckConfig, CheckedFile, register
from repro.check.violations import Violation

__all__ = [
    "check_mutable_defaults",
    "check_runtime_asserts",
    "check_all_drift",
    "check_library_prints",
]

_MUTABLE_CALLS = ("list", "dict", "set", "bytearray")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


@register
def check_mutable_defaults(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R401: mutable default argument values."""
    for node in ast.walk(checked.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults: List[Optional[ast.expr]] = list(node.args.defaults)
        defaults.extend(node.args.kw_defaults)
        name = getattr(node, "name", "<lambda>")
        for default in defaults:
            if default is not None and _is_mutable_default(default):
                yield checked.violation(
                    "R401", default,
                    f"mutable default argument in {name!r} — default to "
                    "None and create the container in the body",
                )


@register
def check_runtime_asserts(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R402: assert outside a sanctioned debug-validator function."""
    allowed = re.compile(config.assert_allowed_pattern)
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.Assert):
            continue
        function = checked.enclosing_function(node)
        if function is not None and allowed.search(function.name):
            continue
        yield checked.violation(
            "R402", node,
            "assert used for runtime validation — raise a typed error "
            "(asserts vanish under python -O); debug validators belong "
            "in a check_* helper",
        )


@register
def check_library_prints(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R404: ``print()`` outside a CLI module."""
    if checked.rel.endswith(config.print_allowed_suffixes):
        return
    for node in ast.walk(checked.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield checked.violation(
                "R404", node,
                "print() in library code — route output through the "
                "repro.obs hooks/exporters (or move it to a cli.py/"
                "__main__.py module)",
            )


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module level (defs, classes, imports, assignments)."""
    bound: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            bound.add(node.target.id)
    return bound


def _imported_public(tree: ast.Module) -> Set[str]:
    """Public names a ``from x import y`` binds at module level."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound = alias.asname or alias.name
                if not bound.startswith("_") and bound != "*":
                    names.add(bound)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            if not node.name.startswith("_"):
                names.add(node.name)
    return names


def _find_all(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            return node
    return None


@register
def check_all_drift(
    checked: CheckedFile, config: CheckConfig
) -> Iterator[Violation]:
    """R403: __all__ vs module bindings in package ``__init__`` files."""
    if not checked.rel.endswith("__init__.py"):
        return
    assignment = _find_all(checked.tree)
    imported = _imported_public(checked.tree)
    if assignment is None:
        if imported:
            yield checked.violation(
                "R403", checked.tree.body[0] if checked.tree.body
                else checked.tree,
                "package __init__ re-exports names but defines no "
                "__all__ — declare the public surface explicitly",
            )
        return
    value = assignment.value
    if not isinstance(value, (ast.List, ast.Tuple)):
        return  # computed __all__: out of scope for a static rule
    exported: List[str] = [
        element.value for element in value.elts
        if isinstance(element, ast.Constant)
        and isinstance(element.value, str)
    ]
    bound = _module_bindings(checked.tree)
    for name in exported:
        if name not in bound:
            yield checked.violation(
                "R403", assignment,
                f"__all__ exports {name!r} but the module never binds it "
                "(stale export)",
            )
    listed = set(exported)
    for name in sorted(imported - listed):
        yield checked.violation(
            "R403", assignment,
            f"public name {name!r} is bound in this package __init__ but "
            "missing from __all__",
        )
