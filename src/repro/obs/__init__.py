"""Observability: metrics registry, walk tracing, exporters.

The operational substrate of the reproduction (docs/observability.md is
the guide): every table's :class:`~repro.core.stats.TableStats` is a thin
view over a :class:`MetricsRegistry`; the write path fires tracing hooks
(:class:`WalkHooks`) that feed histograms (:class:`MetricsHooks`) or a
post-mortem ring buffer (:class:`WalkTraceRecorder`); exporters render a
registry as Prometheus text or a JSON snapshot.

This package sits at the bottom of the dependency stack (it imports
nothing from the rest of ``repro``), so core, bench, and application
layers may all use it freely.

Quick start::

    from repro import VisionEmbedder
    from repro.obs import instrument, prometheus_text

    table = VisionEmbedder(capacity=1000, value_bits=8)
    recorder = instrument(table, traces=64)   # hooks + histograms on
    table.insert_many((k, k % 256) for k in range(900))
    print(prometheus_text(table.metrics))     # counters + histograms
    for trace in recorder.failed():           # post-mortem on failures
        print(trace.describe())
"""

from repro.obs.exporters import (
    json_snapshot,
    json_text,
    parse_prometheus_text,
    prometheus_text,
    registry_from_snapshot,
    write_sidecar,
)
from repro.obs.hooks import (
    CompositeHooks,
    MetricsHooks,
    WalkHooks,
    WalkTrace,
    WalkTraceRecorder,
    default_metrics,
    default_metrics_enabled,
    enable_default_metrics,
)
from repro.obs.looplag import (
    LOOP_LAG_SECONDS_BUCKETS,
    LoopLagMonitor,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryCollector,
    aggregate,
)


def instrument(table, traces: int = 0, keep: str = "failed"):
    """Attach metrics (and optionally tracing) hooks to ``table``.

    Wires a :class:`MetricsHooks` over the table's own stats registry so
    one export covers the legacy counters *and* the walk histograms. With
    ``traces > 0`` a :class:`WalkTraceRecorder` of that capacity is
    composed in and returned (else ``None``). ``table`` is anything with
    ``set_hooks``/``stats`` — :class:`~repro.core.embedder.VisionEmbedder`
    or its concurrent subclass.
    """
    metrics_hooks = MetricsHooks(table.stats.registry)
    if traces > 0:
        recorder = WalkTraceRecorder(capacity=traces, keep=keep)
        table.set_hooks(CompositeHooks(metrics_hooks, recorder))
        return recorder
    table.set_hooks(metrics_hooks)
    return None


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryCollector",
    "aggregate",
    "WalkHooks",
    "MetricsHooks",
    "WalkTrace",
    "WalkTraceRecorder",
    "CompositeHooks",
    "LOOP_LAG_SECONDS_BUCKETS",
    "LoopLagMonitor",
    "default_metrics",
    "default_metrics_enabled",
    "enable_default_metrics",
    "instrument",
    "prometheus_text",
    "parse_prometheus_text",
    "json_snapshot",
    "json_text",
    "registry_from_snapshot",
    "write_sidecar",
]
