"""Tracing hooks for the repair walk, reconstruction, and the static peel.

The write path (:mod:`repro.core.update`, :mod:`repro.core.embedder`,
:mod:`repro.core.static_build`) carries an optional ``hooks`` object and
fires one method per event:

- ``on_walk_start(key, attempt, budget)`` — a repair-walk attempt begins
  (``attempt`` 0 is the deterministic search; retries count up).
- ``on_kick(key, cell, stack_depth)`` — the walk modified ``cell`` while
  repairing ``key``; ``stack_depth`` is the pending work-stack size after
  re-queueing the cell's other keys (the cuckoo "kick" analogue).
- ``on_walk_end(key, success, steps)`` — the attempt quiesced (``True``)
  or exhausted its step budget (``False``) after ``steps`` repair steps.
- ``on_reconstruct(seed, method, seconds, success)`` — a
  :meth:`~repro.core.embedder.VisionEmbedder.reconstruct` call finished;
  ``seed`` is the new master seed, ``method`` ``"dynamic"``/``"static"``.
- ``on_peel_round(round_index, peeled)`` — one round of the vectorised
  static peel retired ``peeled`` keys (bulk loads and static rebuilds).

**Zero cost when disabled** means exactly this: with no hooks attached
(the default) every call site is a single ``hooks is not None`` test and
nothing else — no event objects, no indirection. A no-op walk therefore
times identically with and without the observability layer present.

Implementations provided here:

- :class:`WalkHooks` — the no-op base; subclass and override what you
  need (the write path duck-types, so any object with the right methods
  works too).
- :class:`MetricsHooks` — feeds the standard histograms of a
  :class:`~repro.obs.registry.MetricsRegistry` (walk length, kick depth,
  reconstruction duration) plus per-attempt walk counters.
- :class:`WalkTraceRecorder` — a bounded ring buffer of
  :class:`WalkTrace` records for post-mortem inspection of failed walks.
- :class:`CompositeHooks` — fan out one event stream to several hooks.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

from repro.obs.registry import (
    KICK_DEPTH_BUCKETS,
    RECONSTRUCT_SECONDS_BUCKETS,
    SUBTREE_BUCKETS,
    WALK_STEP_BUCKETS,
    Histogram,
    MetricsRegistry,
)

Cell = Tuple[int, int]


class WalkHooks:
    """No-op base class defining the hook surface."""

    def on_walk_start(self, key: int, attempt: int, budget: int) -> None:
        """A repair-walk attempt for ``key`` begins."""

    def on_kick(self, key: int, cell: Cell, stack_depth: int) -> None:
        """The walk toggled ``cell`` while repairing ``key``."""

    def on_walk_end(self, key: int, success: bool, steps: int) -> None:
        """The attempt ended after ``steps`` steps."""

    def on_reconstruct(self, seed: int, method: str, seconds: float,
                       success: bool) -> None:
        """A reconstruction pass finished (new master seed ``seed``)."""

    def on_peel_round(self, round_index: int, peeled: int) -> None:
        """A static-peel round retired ``peeled`` keys."""


class MetricsHooks(WalkHooks):
    """Feed walk/reconstruction events into a metrics registry.

    Registers (get-or-create) the standard instruments — sharing the
    registry of the table's :class:`~repro.core.stats.TableStats` puts the
    legacy counters and these histograms in one exportable place:

    - ``repro_walk_steps`` (histogram) — steps per walk attempt, the
      paper's repair-walk-length distribution (Fig 5/6 driver metric).
    - ``repro_kick_depth`` (histogram) — work-stack depth at each kick.
    - ``repro_reconstruct_duration_seconds`` (histogram) — wall time per
      ``reconstruct()`` call (§IV-C).
    - ``repro_getcost_subtree_cells`` (histogram) — buckets read per
      recomputed GetCost subtree; attach via
      :meth:`VisionEmbedder.set_hooks`, which hands :attr:`subtree_histogram`
      to the vision strategy.
    - ``repro_walk_attempts_total`` / ``repro_walk_attempt_failures_total``
      (counters) — per-*attempt* tallies; note an update only counts as
      failed in ``TableStats`` after every retry fails.
    - ``repro_peel_rounds_total`` / ``repro_peeled_keys_total`` (counters)
      — static-peel progress.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.walk_steps = reg.histogram(
            "repro_walk_steps", WALK_STEP_BUCKETS,
            help="Repair steps per walk attempt", unit="steps",
        )
        self.kick_depth = reg.histogram(
            "repro_kick_depth", KICK_DEPTH_BUCKETS,
            help="Pending work-stack depth at each kick", unit="keys",
        )
        self.reconstruct_duration = reg.histogram(
            "repro_reconstruct_duration_seconds",
            RECONSTRUCT_SECONDS_BUCKETS,
            help="Wall time per reconstruct() call", unit="seconds",
        )
        self.subtree_histogram = reg.histogram(
            "repro_getcost_subtree_cells", SUBTREE_BUCKETS,
            help="Buckets read per recomputed GetCost subtree",
            unit="cells",
        )
        self.walk_attempts = reg.counter(
            "repro_walk_attempts_total",
            help="Repair-walk attempts (retries count separately)",
        )
        self.walk_attempt_failures = reg.counter(
            "repro_walk_attempt_failures_total",
            help="Walk attempts that exhausted their step budget",
        )
        self.peel_rounds = reg.counter(
            "repro_peel_rounds_total",
            help="Vectorised static-peel rounds executed",
        )
        self.peeled_keys = reg.counter(
            "repro_peeled_keys_total",
            help="Keys retired by the static peel",
        )

    def on_walk_start(self, key: int, attempt: int, budget: int) -> None:
        self.walk_attempts.inc()

    def on_kick(self, key: int, cell: Cell, stack_depth: int) -> None:
        self.kick_depth.observe(stack_depth)

    def on_walk_end(self, key: int, success: bool, steps: int) -> None:
        self.walk_steps.observe(steps)
        if not success:
            self.walk_attempt_failures.inc()

    def on_reconstruct(self, seed: int, method: str, seconds: float,
                       success: bool) -> None:
        self.reconstruct_duration.observe(seconds)

    def on_peel_round(self, round_index: int, peeled: int) -> None:
        self.peel_rounds.inc()
        self.peeled_keys.inc(peeled)


@dataclass
class WalkTrace:
    """One recorded repair-walk attempt.

    ``kicks`` lists ``(cell, stack_depth)`` in modification order —
    enough to replay which buckets a stuck walk was cycling through.
    ``success`` is ``None`` while the walk is still in flight.
    """

    key: int
    attempt: int
    budget: int
    kicks: List[Tuple[Cell, int]] = field(default_factory=list)
    steps: int = 0
    success: Optional[bool] = None

    def describe(self) -> str:
        """A compact multi-line rendering for post-mortem reading."""
        state = {True: "ok", False: "FAILED", None: "in-flight"}[self.success]
        lines = [
            f"walk key={self.key} attempt={self.attempt} "
            f"budget={self.budget} steps={self.steps} [{state}]"
        ]
        for i, (cell, depth) in enumerate(self.kicks):
            lines.append(f"  kick {i:3d}: cell={cell} stack_depth={depth}")
        return "\n".join(lines)


class WalkTraceRecorder(WalkHooks):
    """Ring buffer of walk traces (``capacity`` most recent).

    ``keep="failed"`` (the default) retains only attempts that exhausted
    their budget — the post-mortem case: near full occupancy a failed
    walk's kick sequence shows the cycling cluster of buckets (see the
    worked example in docs/observability.md). ``keep="all"`` records
    every attempt.
    """

    def __init__(self, capacity: int = 256, keep: str = "failed") -> None:
        if keep not in ("failed", "all"):
            raise ValueError("keep must be 'failed' or 'all'")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.keep = keep
        self._traces: Deque[WalkTrace] = deque(maxlen=capacity)
        self._current: Optional[WalkTrace] = None
        self._lock = threading.Lock()

    def on_walk_start(self, key: int, attempt: int, budget: int) -> None:
        self._current = WalkTrace(key=key, attempt=attempt, budget=budget)

    def on_kick(self, key: int, cell: Cell, stack_depth: int) -> None:
        if self._current is not None:
            self._current.kicks.append((cell, stack_depth))

    def on_walk_end(self, key: int, success: bool, steps: int) -> None:
        trace = self._current
        self._current = None
        if trace is None:
            return
        trace.success = success
        trace.steps = steps
        if success and self.keep == "failed":
            return
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> List[WalkTrace]:
        """Recorded traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def failed(self) -> List[WalkTrace]:
        """Only the failed attempts among the recorded traces."""
        return [t for t in self.traces() if t.success is False]

    def last(self) -> Optional[WalkTrace]:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
        self._current = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class CompositeHooks(WalkHooks):
    """Fan one event stream out to several hook objects in order.

    Exposes ``subtree_histogram`` from the first child that has one, so a
    composite of :class:`MetricsHooks` + :class:`WalkTraceRecorder` still
    wires the GetCost histogram into the vision strategy.
    """

    def __init__(self, *hooks: WalkHooks) -> None:
        self.hooks: Sequence[WalkHooks] = tuple(hooks)

    @property
    def subtree_histogram(self) -> Optional[Histogram]:
        for hook in self.hooks:
            histogram = getattr(hook, "subtree_histogram", None)
            if isinstance(histogram, Histogram):
                return histogram
        return None

    def on_walk_start(self, key: int, attempt: int, budget: int) -> None:
        for hook in self.hooks:
            hook.on_walk_start(key, attempt, budget)

    def on_kick(self, key: int, cell: Cell, stack_depth: int) -> None:
        for hook in self.hooks:
            hook.on_kick(key, cell, stack_depth)

    def on_walk_end(self, key: int, success: bool, steps: int) -> None:
        for hook in self.hooks:
            hook.on_walk_end(key, success, steps)

    def on_reconstruct(self, seed: int, method: str, seconds: float,
                       success: bool) -> None:
        for hook in self.hooks:
            hook.on_reconstruct(seed, method, seconds, success)

    def on_peel_round(self, round_index: int, peeled: int) -> None:
        for hook in self.hooks:
            hook.on_peel_round(round_index, peeled)


# ---------------------------------------------------------------------------
# Process-wide default: benchmark runs flip this on to instrument every
# table they build without threading a parameter through every driver.
# ---------------------------------------------------------------------------

_DEFAULT_METRICS = False
_DEFAULT_LOCK = threading.Lock()


def enable_default_metrics(enabled: bool = True) -> None:
    """Make every subsequently-built ``VisionEmbedder`` attach
    :class:`MetricsHooks` over its own stats registry (until disabled)."""
    global _DEFAULT_METRICS
    with _DEFAULT_LOCK:
        _DEFAULT_METRICS = enabled


def default_metrics_enabled() -> bool:
    return _DEFAULT_METRICS


class default_metrics:
    """Context manager form of :func:`enable_default_metrics` (re-entrant
    only in the trivial sense: restores the previous flag on exit)."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._previous = False

    def __enter__(self) -> "default_metrics":
        global _DEFAULT_METRICS
        with _DEFAULT_LOCK:
            self._previous = _DEFAULT_METRICS
            _DEFAULT_METRICS = self._enabled
        return self

    def __exit__(self, *exc: object) -> bool:
        global _DEFAULT_METRICS
        with _DEFAULT_LOCK:
            _DEFAULT_METRICS = self._previous
        return False
