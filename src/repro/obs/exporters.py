"""Serialise a :class:`~repro.obs.registry.MetricsRegistry`.

Two formats, both documented (with samples) in docs/observability.md:

- **Prometheus text exposition** (:func:`prometheus_text`) — ``# HELP`` /
  ``# TYPE`` comments, plain samples for counters and gauges, cumulative
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for histograms.
  :func:`parse_prometheus_text` is the minimal inverse used by tests and
  the CI smoke step to assert a sidecar parses.
- **JSON snapshot** (:func:`json_snapshot` / :func:`json_text`) — one
  self-describing document (``format`` marker ``repro-metrics/1``) that
  keeps histogram buckets non-cumulative for direct plotting.

:func:`write_sidecar` writes both next to a results file — the metrics
sidecar every benchmark run emits (see ``repro.bench.harness``).
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Tuple

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

JSON_FORMAT = "repro-metrics/1"


def _format_number(value) -> str:
    """Prometheus-friendly rendering: integral values without a dot."""
    as_float = float(value)
    if math.isinf(as_float):
        return "+Inf" if as_float > 0 else "-Inf"
    if as_float == int(as_float):
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name} {_format_number(metric.value)}")
        elif isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative():
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_number(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f"{metric.name}_sum {_format_number(metric.sum)}"
            )
            lines.append(f"{metric.name}_count {metric.count}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{sample_name[labels]: value}``.

    Good enough for round-trip tests and sidecar validation; not a general
    Prometheus parser (no escapes inside label values, no timestamps).
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"unparseable sample line: {line!r}")
        samples[name] = float(value)
    return samples


def json_snapshot(registry: MetricsRegistry) -> dict:
    """The registry as one JSON-ready dict (non-cumulative buckets)."""
    counters: Dict[str, dict] = {}
    gauges: Dict[str, dict] = {}
    histograms: Dict[str, dict] = {}
    for metric in registry.metrics():
        entry = {"help": metric.help, "unit": metric.unit}
        if isinstance(metric, Counter):
            counters[metric.name] = {"value": metric.value, **entry}
        elif isinstance(metric, Gauge):
            gauges[metric.name] = {"value": metric.value, **entry}
        elif isinstance(metric, Histogram):
            histograms[metric.name] = {
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(metric.bounds, metric.counts)
                ] + [{"le": "+Inf", "count": metric.counts[-1]}],
                "count": metric.count,
                "sum": metric.sum,
                **entry,
            }
    return {
        "format": JSON_FORMAT,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def registry_from_snapshot(snapshot: dict) -> MetricsRegistry:
    """Rebuild a registry from a :func:`json_snapshot` dict (the inverse).

    This is how the multi-process serving front merges worker metrics:
    each worker ships its registries as JSON snapshots over the control
    pipe, the receiving process revives them with this function and folds
    them together with :func:`~repro.obs.registry.aggregate`. The revived
    registry is non-collectable (it represents another process's
    instruments, not this one's).

    Raises ``ValueError`` on a missing/foreign ``format`` marker or a
    malformed histogram entry.
    """
    marker = snapshot.get("format")
    if marker != JSON_FORMAT:
        raise ValueError(
            f"not a {JSON_FORMAT} snapshot (format={marker!r})"
        )
    registry = MetricsRegistry(collectable=False)
    for name, entry in snapshot.get("counters", {}).items():
        counter = registry.counter(
            name, entry.get("help", ""), entry.get("unit", "")
        )
        counter.inc(entry["value"])
    for name, entry in snapshot.get("gauges", {}).items():
        gauge = registry.gauge(
            name, entry.get("help", ""), entry.get("unit", "")
        )
        gauge.set(entry["value"])
    for name, entry in snapshot.get("histograms", {}).items():
        buckets = entry["buckets"]
        if not buckets or buckets[-1]["le"] != "+Inf":
            raise ValueError(
                f"histogram {name!r} snapshot lacks the +Inf bucket"
            )
        bounds = [bucket["le"] for bucket in buckets[:-1]]
        histogram = registry.histogram(
            name, bounds, entry.get("help", ""), entry.get("unit", "")
        )
        counts = [int(bucket["count"]) for bucket in buckets]
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"histogram {name!r} snapshot has {len(counts)} buckets, "
                f"expected {len(histogram.counts)}"
            )
        histogram.counts = counts
        histogram.count = int(entry["count"])
        histogram.sum = entry["sum"]
    return registry


def json_text(registry: MetricsRegistry) -> str:
    return json.dumps(json_snapshot(registry), indent=2) + "\n"


def write_sidecar(registry: MetricsRegistry, path: str) -> Tuple[str, str]:
    """Write ``<base>.metrics.json`` and ``<base>.metrics.prom``.

    ``path`` is the results file the sidecar accompanies (a trailing
    ``.json``/``.csv``/``.txt`` extension is stripped to form the base) or
    a bare base path. Returns ``(json_path, prom_path)``.
    """
    base, ext = os.path.splitext(path)
    if ext not in (".json", ".csv", ".txt", ".prom"):
        base = path
    json_path = base + ".metrics.json"
    prom_path = base + ".metrics.prom"
    with open(json_path, "w") as handle:
        handle.write(json_text(registry))
    with open(prom_path, "w") as handle:
        handle.write(prometheus_text(registry))
    return json_path, prom_path
