"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is the substrate of the observability layer (see
``docs/observability.md``): every :class:`~repro.core.stats.TableStats`
owns one, the tracing hooks feed histograms into it, and the exporters in
:mod:`repro.obs.exporters` serialise it as Prometheus text or a JSON
snapshot.

Design constraints, in order:

1. **Zero cost when unused.** Creating a registry allocates a handful of
   tiny objects and nothing else; a counter is one Python object with a
   plain ``value`` attribute, so the single-writer hot path (the repair
   walk, which is always serialised — by construction in
   :class:`~repro.core.embedder.VisionEmbedder`, by the update mutex in
   the concurrent wrapper) can do ``counter.value += 1`` exactly as
   cheaply as the old dataclass field it replaces.
2. **Thread-safe when shared.** The *methods* (``Counter.inc``,
   ``Gauge.set``, ``Histogram.observe``, registry get-or-create) take the
   registry's lock, so hooks and scrapers running on other threads see
   consistent totals. Multi-threaded writers must use the methods, not
   the raw ``value`` attribute.
3. **Aggregatable.** Registries of many tables merge by metric name
   (counters sum, gauges take the max, histograms with identical bounds
   add bucket-wise), which is how a benchmark run emits one sidecar for
   every table it built — see :class:`RegistryCollector`.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default bucket upper bounds for the standard histograms (the implicit
#: ``+Inf`` bucket is always appended). Catalogued in docs/observability.md.
WALK_STEP_BUCKETS: Tuple[Number, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
KICK_DEPTH_BUCKETS: Tuple[Number, ...] = (0, 1, 2, 4, 8, 16, 32, 64)
SUBTREE_BUCKETS: Tuple[Number, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
BATCH_SIZE_BUCKETS: Tuple[Number, ...] = (1, 8, 64, 512, 4096, 32768)
RECONSTRUCT_SECONDS_BUCKETS: Tuple[Number, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0,
)
#: Request-latency bounds for the serving layer (repro.serve): sub-ms
#: resolution around the micro-batch window, tailing off at multi-second
#: outliers so a stalled drain still lands in a finite bucket.
LATENCY_SECONDS_BUCKETS: Tuple[Number, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 10.0,
)


class Counter:
    """A monotonically-growing total (float-valued for second counters).

    ``inc`` is the thread-safe entry point; the bare ``value`` attribute is
    reserved for single-writer hot paths and for the ``TableStats``
    property view, which is only ever mutated under the owning table's
    serialisation.
    """

    __slots__ = ("name", "help", "unit", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help
        self.unit = unit
        self.value: Number = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Atomically add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (e.g. the largest batch seen)."""

    __slots__ = ("name", "help", "unit", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help
        self.unit = unit
        self.value: Number = 0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def set_max(self, value: Number) -> None:
        """Keep the running maximum of observed values."""
        with self._lock:
            if value > self.value:
                self.value = value


class Histogram:
    """Fixed-bucket histogram with Prometheus-compatible semantics.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; an implicit ``+Inf`` bucket catches the
    rest. ``counts`` holds *per-bucket* (non-cumulative) tallies with one
    extra slot for ``+Inf``; exporters derive the cumulative ``le`` series.
    """

    __slots__ = ("name", "help", "unit", "bounds", "counts", "count", "sum",
                 "_lock")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[Number],
                 help: str = "", unit: str = "",
                 lock: Optional[threading.Lock] = None):
        if not bounds:
            raise ValueError("histogram needs at least one finite bucket")
        bound_list = [float(b) for b in bounds]
        if any(b >= c for b, c in zip(bound_list, bound_list[1:])):
            raise ValueError("histogram bounds must strictly increase")
        self.name = name
        self.help = help
        self.unit = unit
        self.bounds: Tuple[float, ...] = tuple(bound_list)
        self.counts: List[int] = [0] * (len(bound_list) + 1)
        self.count = 0
        self.sum: Number = 0
        self._lock = lock if lock is not None else threading.Lock()

    def bucket_for(self, value: Number) -> int:
        """Index of the bucket ``value`` falls into (len(bounds) = +Inf)."""
        return bisect.bisect_left(self.bounds, float(value))

    def observe(self, value: Number) -> None:
        """Record one sample."""
        index = bisect.bisect_left(self.bounds, float(value))
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` ending at ``+Inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket tallies.

        Prometheus ``histogram_quantile`` semantics: find the bucket the
        target rank falls into, then interpolate linearly inside it (the
        first bucket interpolates from 0). A rank landing in the ``+Inf``
        bucket returns the largest finite bound — the estimate is then a
        lower bound, which is the conservative direction for latency
        gates. Raises ``ValueError`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        rank = q * total
        running = 0.0
        for index, count in enumerate(counts[:-1]):
            if running + count >= rank and count > 0:
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                fraction = (rank - running) / count
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            running += count
        return self.bounds[-1]


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration.

    ``counter``/``gauge``/``histogram`` return the existing metric when the
    name is already registered (the spec must agree) so independent
    components can share one registry without coordination —
    :class:`~repro.core.stats.TableStats` and
    :class:`~repro.obs.hooks.MetricsHooks` do exactly that.
    """

    def __init__(self, collectable: bool = True):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()
        if collectable:
            _register_with_collectors(self)

    # -- registration ---------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, unit: str,
                       **kwargs) -> Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                bounds = kwargs.get("bounds")
                if bounds is not None and existing.bounds != tuple(
                    float(b) for b in bounds
                ):
                    raise ValueError(
                        f"histogram {name!r} already registered with "
                        f"different buckets"
                    )
                return existing
            metric = cls(name, help=help, unit=unit, lock=self._lock,
                         **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, help, unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help, unit)

    def histogram(self, name: str, bounds: Sequence[Number],
                  help: str = "", unit: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help, unit,
                                   bounds=bounds)

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """All metrics in registration order (a stable snapshot list)."""
        with self._lock:
            return list(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric (counters, gauges, histogram tallies)."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    metric.counts = [0] * len(metric.counts)
                    metric.count = 0
                    metric.sum = 0
                else:
                    metric.value = 0

    # -- aggregation ----------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry by metric name.

        Counters add, gauges keep the maximum, histograms (same bounds
        required) add bucket-wise. Metrics new to this registry are copied
        with the same spec.
        """
        for metric in other.metrics():
            if isinstance(metric, Counter):
                self.counter(metric.name, metric.help, metric.unit).inc(
                    metric.value
                )
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, metric.help, metric.unit).set_max(
                    metric.value
                )
            else:
                mine = self.histogram(metric.name, metric.bounds,
                                      metric.help, metric.unit)
                with mine._lock:
                    for i, count in enumerate(metric.counts):
                        mine.counts[i] += count
                    mine.count += metric.count
                    mine.sum += metric.sum


def aggregate(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Merge many registries into one fresh (non-collectable) registry."""
    merged = MetricsRegistry(collectable=False)
    for registry in registries:
        merged.merge_from(registry)
    return merged


# ---------------------------------------------------------------------------
# Collection: gather every registry created inside a scope
# ---------------------------------------------------------------------------

_COLLECTORS: List["RegistryCollector"] = []
_COLLECTORS_LOCK = threading.Lock()


def _register_with_collectors(registry: MetricsRegistry) -> None:
    with _COLLECTORS_LOCK:
        for collector in _COLLECTORS:
            collector._add(registry)


class RegistryCollector:
    """Context manager that captures every registry created inside it.

    Benchmark drivers create tables (and therefore registries) internally;
    a collector around the run keeps a strong reference to each one so the
    run can be summarised after the tables themselves are gone::

        with RegistryCollector() as collector:
            run_experiment("fig4")
        combined = collector.aggregate()

    Nesting is fine — every active collector sees every new registry.
    """

    #: set by :func:`repro.bench.harness.metrics_sidecar` after exit —
    #: the (json, prom) paths the aggregated run was written to.
    sidecar_paths: Tuple[str, str]

    def __init__(self) -> None:
        self._registries: List[MetricsRegistry] = []
        self._lock = threading.Lock()

    def _add(self, registry: MetricsRegistry) -> None:
        with self._lock:
            self._registries.append(registry)

    def registries(self) -> List[MetricsRegistry]:
        with self._lock:
            return list(self._registries)

    def aggregate(self) -> MetricsRegistry:
        """One merged registry over everything captured so far."""
        return aggregate(self.registries())

    def __enter__(self) -> "RegistryCollector":
        with _COLLECTORS_LOCK:
            _COLLECTORS.append(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        with _COLLECTORS_LOCK:
            try:
                _COLLECTORS.remove(self)
            except ValueError:  # pragma: no cover - double exit
                pass
        return False
