"""Event-loop lag monitoring: the dynamic counterpart of rule R601.

The static R6xx rules prove no *known* blocking call reaches the serve
loop; :class:`LoopLagMonitor` measures the residue they cannot see —
C-extension stalls, GC pauses, an over-large numpy batch executing
inline. The technique is the classic sentinel timer: schedule a sleep of
``interval_s`` and measure how late the wakeup actually fires. On an
idle, healthy loop the lag is microseconds; anything that blocks the
loop for longer than the interval shows up, attributed and bounded, in
the ``repro_serve_loop_lag_seconds`` histogram.

The monitor is pure asyncio + :mod:`repro.obs` (this package imports
nothing from the rest of ``repro``), so the serve layer, tests, and the
bench harness all share one implementation:

- :class:`~repro.serve.server.TableServer` installs one per server and
  exposes the p99 through ``stats`` and the metrics sidecars.
- ``tests/test_serve.py`` asserts the p99 stays under budget while a
  batched CRUD workload runs — a *runtime* proof that batch execution
  never monopolises the loop.
- ``benchmarks/bench_serve.py --check`` cross-validates the exported
  sidecar histogram against the monitor's live counts.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple, Union

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["LOOP_LAG_SECONDS_BUCKETS", "LoopLagMonitor"]

#: Bucket bounds for loop-lag histograms: scheduling noise lives under
#: 1 ms, a healthy micro-batch drain under ~5 ms, and anything beyond
#: 100 ms means a blocking call defeated the R601 analysis.
LOOP_LAG_SECONDS_BUCKETS: Tuple[Union[int, float], ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 1.0,
)


class LoopLagMonitor:
    """Samples event-loop scheduling lag into a registry histogram.

    ``interval_s`` is both the sampling period and the sensitivity floor:
    a stall shorter than the interval can fall between two sentinels.
    5 ms (the default) matches the serve layer's batch window, so any
    batch execution that would delay a *peer* request is observable.

    Lifecycle mirrors the micro-batcher: construct eagerly (the histogram
    registers immediately, so exports are stable even before ``start``),
    ``start()`` inside the running loop, ``await stop()`` on shutdown.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 0.005,
        name: str = "repro_serve_loop_lag_seconds",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.histogram: Histogram = registry.histogram(
            name, LOOP_LAG_SECONDS_BUCKETS,
            help="Observed event-loop scheduling lag of a sentinel timer",
            unit="seconds",
        )
        self._task: Optional[asyncio.Task[None]] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Begin sampling on the *running* loop (idempotent)."""
        if self._task is not None and not self._task.done():
            return
        self._task = asyncio.get_running_loop().create_task(
            self._tick(), name="repro-serve-loop-lag"
        )

    async def stop(self) -> None:
        """Cancel the sentinel task and wait for it to unwind."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    async def _tick(self) -> None:
        loop = asyncio.get_running_loop()
        interval = self.interval_s
        target = loop.time() + interval
        while True:
            await asyncio.sleep(max(0.0, target - loop.time()))
            now = loop.time()
            self.histogram.observe(max(0.0, now - target))
            # Re-anchor on *now*: after a long stall we want one honest
            # large sample, not a burst of catch-up sentinels.
            target = now + interval

    # -- readouts -------------------------------------------------------

    @property
    def samples(self) -> int:
        """Sentinel wakeups observed so far."""
        return self.histogram.count

    def p99_s(self) -> float:
        """Estimated 99th-percentile lag in seconds (0.0 if unsampled)."""
        if self.histogram.count == 0:
            return 0.0
        return self.histogram.quantile(0.99)
