"""Hashing substrate for the VisionEmbedder reproduction.

The paper uses MurmurHash [25] throughout. This package provides a
from-scratch MurmurHash3 (x86, 32-bit) implementation, both as a scalar
function over byte strings and as a numpy-vectorised function over arrays of
64-bit integer keys (the two agree bit-for-bit on 8-byte little-endian
encodings), plus the seeded index-hash families that every value-only table
in this repository is built on.
"""

from repro.hashing.murmur3 import murmur3_32, murmur3_32_u64, murmur3_32_u64_batch
from repro.hashing.family import (
    IndexHasher,
    HashFamily,
    key_to_bytes,
    key_to_u64,
    keys_to_u64_batch,
)

__all__ = [
    "murmur3_32",
    "murmur3_32_u64",
    "murmur3_32_u64_batch",
    "IndexHasher",
    "HashFamily",
    "key_to_bytes",
    "key_to_u64",
    "keys_to_u64_batch",
]
