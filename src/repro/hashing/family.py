"""Seeded index-hash families mapping arbitrary keys into table ranges.

Every value-only table in this repository selects cells by hashing a key
into ``[0, width)`` with a small number of independent hash functions.
:class:`IndexHasher` is one such function; :class:`HashFamily` bundles
several with seeds derived deterministically from a single master seed, so
that a table can be reconstructed ("change all hash functions") by bumping
one integer.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.hashing.murmur3 import murmur3_32, murmur3_32_u64, murmur3_32_u64_batch

Key = Union[int, bytes, str]

# Multiplier decorrelating the per-function seeds derived from a master seed
# (an arbitrary odd 32-bit constant).
_SEED_STRIDE = 0x9E3779B1


def key_to_bytes(key: Key) -> bytes:
    """Canonicalise a key to bytes (int: minimal 8-byte-multiple LE)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (int, np.integer)):
        key = int(key)
        if key < 0:
            raise ValueError("integer keys must be non-negative")
        length = max(8, (key.bit_length() + 63) // 64 * 8)
        return key.to_bytes(length, "little")
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def key_to_u64(key: Key) -> int:
    """Reduce a key to a 64-bit integer handle (hash non-int keys down)."""
    if isinstance(key, (int, np.integer)):
        key = int(key)
        if 0 <= key < 1 << 64:
            return key
        data = key_to_bytes(key)
    else:
        data = key_to_bytes(key)
    low = murmur3_32(data, 0x5BD1E995)
    high = murmur3_32(data, 0x27D4EB2F)
    return (high << 32) | low


def keys_to_u64_batch(keys) -> np.ndarray:
    """Canonicalise a batch of keys to one ``uint64`` handle array.

    Numpy arrays of unsigned/non-negative integers pass through with a
    single (possibly zero-copy) cast; anything else — python ints, strings,
    bytes, mixed sequences — falls back to per-element :func:`key_to_u64`.
    """
    if isinstance(keys, np.ndarray) and keys.dtype.kind in "ui":
        if keys.dtype.kind == "i" and keys.size and int(keys.min()) < 0:
            raise ValueError("integer keys must be non-negative")
        return keys.astype(np.uint64, copy=False)
    return np.fromiter(
        (key_to_u64(key) for key in keys), dtype=np.uint64
    )


class IndexHasher:
    """One seeded hash function mapping keys into ``[0, width)``."""

    __slots__ = ("seed", "width")

    def __init__(self, seed: int, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.seed = seed & 0xFFFFFFFF
        self.width = width

    def index(self, key: Key) -> int:
        """Map ``key`` to an index in ``[0, width)``."""
        if isinstance(key, (int, np.integer)) and 0 <= int(key) < 1 << 64:
            return murmur3_32_u64(int(key), self.seed) % self.width
        return murmur3_32(key_to_bytes(key), self.seed) % self.width

    def index_batch(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`index` over a ``uint64`` key array."""
        return murmur3_32_u64_batch(keys, self.seed) % np.uint64(self.width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexHasher(seed=0x{self.seed:08x}, width={self.width})"


class HashFamily:
    """A family of independent :class:`IndexHasher` functions.

    Parameters
    ----------
    master_seed:
        Single integer from which all per-function seeds derive.
    widths:
        Range of each function. Pass one width per function (they may
        differ, e.g. Othello's two unequal arrays).
    """

    def __init__(self, master_seed: int, widths: Sequence[int]):
        self.master_seed = master_seed
        self.hashers = tuple(
            IndexHasher(self._derive_seed(master_seed, i), width)
            for i, width in enumerate(widths)
        )

    @staticmethod
    def _derive_seed(master_seed: int, index: int) -> int:
        mixed = (master_seed + (index + 1) * _SEED_STRIDE) & 0xFFFFFFFF
        # One fmix-style round so adjacent master seeds do not yield
        # correlated families.
        mixed ^= mixed >> 16
        mixed = (mixed * 0x85EBCA6B) & 0xFFFFFFFF
        mixed ^= mixed >> 13
        return mixed

    def __len__(self) -> int:
        return len(self.hashers)

    def __getitem__(self, i: int) -> IndexHasher:
        return self.hashers[i]

    def __iter__(self) -> Iterable[IndexHasher]:
        return iter(self.hashers)

    def indices(self, key: Key) -> tuple:
        """All function outputs for ``key``, one index per function."""
        return tuple(h.index(key) for h in self.hashers)

    def indices_batch(self, keys: np.ndarray) -> tuple:
        """Vectorised :meth:`indices`: one index array per function."""
        return tuple(h.index_batch(keys) for h in self.hashers)

    def reseeded(self, new_master_seed: int) -> "HashFamily":
        """A fresh family with the same widths and a new master seed."""
        return HashFamily(new_master_seed, [h.width for h in self.hashers])
