"""MurmurHash3 (x86, 32-bit variant), implemented from scratch.

Three entry points are provided:

- :func:`murmur3_32` — the reference scalar implementation over ``bytes``.
- :func:`murmur3_32_u64` — a scalar fast path for a single 64-bit integer
  key, equivalent to hashing its 8-byte little-endian encoding.
- :func:`murmur3_32_u64_batch` — a numpy-vectorised version of
  :func:`murmur3_32_u64` over a ``uint64`` array, used by the benchmark
  harness so that lookup-throughput experiments measure table work rather
  than Python-level hashing overhead.

All three agree bit-for-bit: ``murmur3_32(k.to_bytes(8, "little"), seed) ==
murmur3_32_u64(k, seed) == murmur3_32_u64_batch(np.array([k]), seed)[0]``.
"""

from __future__ import annotations

import numpy as np

_MASK32 = 0xFFFFFFFF
_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Hash ``data`` to a 32-bit unsigned integer with MurmurHash3 x86_32."""
    h = seed & _MASK32
    length = len(data)
    n_blocks = length // 4

    for i in range(n_blocks):
        k = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    tail = data[4 * n_blocks :]
    k = 0
    if len(tail) >= 3:
        k ^= tail[2] << 16
    if len(tail) >= 2:
        k ^= tail[1] << 8
    if len(tail) >= 1:
        k ^= tail[0]
        k = (k * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k

    h ^= length
    return _fmix32(h)


def murmur3_32_u64(key: int, seed: int = 0) -> int:
    """Hash one 64-bit integer key (as its 8-byte little-endian encoding)."""
    h = seed & _MASK32

    for block in (key & _MASK32, (key >> 32) & _MASK32):
        k = (block * _C1) & _MASK32
        k = _rotl32(k, 15)
        k = (k * _C2) & _MASK32
        h ^= k
        h = _rotl32(h, 13)
        h = (h * 5 + 0xE6546B64) & _MASK32

    h ^= 8
    return _fmix32(h)


def _rotl32_np(x: np.ndarray, r: int) -> np.ndarray:
    return ((x << np.uint64(r)) | (x >> np.uint64(32 - r))) & np.uint64(_MASK32)


def murmur3_32_u64_batch(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorised :func:`murmur3_32_u64` over a ``uint64`` key array.

    Returns a ``uint64`` array of 32-bit hash values (kept in uint64 so the
    caller can do further modular arithmetic without overflow).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    mask = np.uint64(_MASK32)
    h = np.full(keys.shape, seed & _MASK32, dtype=np.uint64)

    for block in (keys & mask, (keys >> np.uint64(32)) & mask):
        k = (block * np.uint64(_C1)) & mask
        k = _rotl32_np(k, 15)
        k = (k * np.uint64(_C2)) & mask
        h ^= k
        h = _rotl32_np(h, 13)
        h = (h * np.uint64(5) + np.uint64(0xE6546B64)) & mask

    h ^= np.uint64(8)
    h ^= h >> np.uint64(16)
    h = (h * np.uint64(0x85EBCA6B)) & mask
    h ^= h >> np.uint64(13)
    h = (h * np.uint64(0xC2B2AE35)) & mask
    h ^= h >> np.uint64(16)
    return h
