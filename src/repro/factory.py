"""Factory building any compared table by its paper name.

The benchmark harness, examples, and cross-algorithm property tests use
this single entry point so every experiment sweeps the same five algorithms
with the paper's default parameters (§VI-A3):

============== =========================================
name           default fast-space budget per L-bit value
============== =========================================
vision         1.7·L   (VisionEmbedder)
vision-mt      1.7·L   (thread-safe VisionEmbedder)
vision-sharded 1.7·L·shard_slack (hash-partitioned shards)
bloomier       1.23·L·(n+100)/n
othello        2.33·L  (1.33 + 1.0 arrays)
color          2.2·L
ludo           3.76 + 1.05·L
============== =========================================

``vision-sharded`` and ``vision-mt`` are buildable by name but excluded
from ``TABLE_NAMES`` (the paper's five-way comparison set).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines import Bloomier, ColoringEmbedder, Ludo, Othello
from repro.core import (
    ConcurrentVisionEmbedder,
    EmbedderConfig,
    ShardedEmbedder,
    VisionEmbedder,
)
from repro.table import ValueOnlyTable

TABLE_NAMES = ("vision", "bloomier", "othello", "color", "ludo")


def _vision_config(kwargs: dict, space_factor: Optional[float]) -> EmbedderConfig:
    """Assemble the EmbedderConfig for the vision-family tables.

    ``backend`` rides as a first-class factory kwarg (the benchmark
    harness sweeps it like ``space_factor``); anything else configurable
    goes through ``config_kwargs`` or a pre-built ``config``.
    """
    config_kwargs = dict(kwargs.pop("config_kwargs", {}))
    if space_factor is not None:
        config_kwargs["space_factor"] = space_factor
    backend = kwargs.pop("backend", None)
    if backend is not None:
        config_kwargs["backend"] = backend
    config = kwargs.pop("config", None)
    if config is None:
        config = EmbedderConfig(**config_kwargs)
    return config


def make_table(
    name: str,
    capacity: int,
    value_bits: int,
    seed: int = 1,
    space_factor: Optional[float] = None,
    **kwargs,
) -> ValueOnlyTable:
    """Build a value-only table by algorithm name.

    ``space_factor`` overrides the algorithm's default fast-space budget
    (cells per expected key); the space-cost experiments sweep it. For the
    vision family, ``backend=`` selects the execution engine
    (``"scalar"``/``"vector"``/``"numba"``, see :mod:`repro.core.engine`).
    Additional keyword arguments pass through to the table's constructor.
    """
    if name == "vision":
        config = _vision_config(kwargs, space_factor)
        return VisionEmbedder(capacity, value_bits, config=config, seed=seed, **kwargs)
    if name == "vision-mt":
        config = _vision_config(kwargs, space_factor)
        return ConcurrentVisionEmbedder(
            capacity, value_bits, config=config, seed=seed, **kwargs
        )
    if name == "vision-sharded":
        config = _vision_config(kwargs, space_factor)
        return ShardedEmbedder(
            capacity, value_bits, config=config, seed=seed, **kwargs
        )
    if name == "bloomier":
        if space_factor is not None:
            kwargs["space_factor"] = space_factor
        return Bloomier(capacity, value_bits, seed=seed, **kwargs)
    if name == "othello":
        if space_factor is not None:
            # Keep the original 1.33 : 1.0 split while scaling the total.
            kwargs["ma_factor"] = space_factor * 1.33 / 2.33
            kwargs["mb_factor"] = space_factor * 1.00 / 2.33
        return Othello(capacity, value_bits, seed=seed, **kwargs)
    if name == "color":
        if space_factor is not None:
            kwargs["space_factor"] = space_factor
        return ColoringEmbedder(capacity, value_bits, seed=seed, **kwargs)
    if name == "ludo":
        if space_factor is not None:
            # For Ludo the sweepable knob is slot occupancy.
            kwargs["bucket_load"] = min(1.0, 1.052 / space_factor)
        return Ludo(capacity, value_bits, seed=seed, **kwargs)
    raise ValueError(f"unknown table name {name!r}; known: {TABLE_NAMES}")
