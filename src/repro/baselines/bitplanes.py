"""Bit-plane value storage, as used by the Othello and Color codebases.

The original Othello and Coloring Embedder implementations store an L-bit
value as L separate 1-bit maps and answer a lookup with L bitmap probes —
which is why the paper's Fig 8(b) shows their lookup throughput degrading
linearly in L while VisionEmbedder (word-wide cells) stays flat. To
reproduce that shape honestly rather than by inserting fake work, the
two-hash baselines here genuinely store bit-planes and genuinely pay one
pass per plane.
"""

from __future__ import annotations

import numpy as np


class BitPlaneStore:
    """``num_cells`` cells of ``value_bits`` bits, stored as bit-planes."""

    def __init__(self, num_cells: int, value_bits: int):
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        if not 1 <= value_bits <= 64:
            raise ValueError("value_bits must be in [1, 64]")
        self.num_cells = num_cells
        self.value_bits = value_bits
        self._planes = np.zeros((value_bits, num_cells), dtype=np.uint8)

    @property
    def space_bits(self) -> int:
        """Analytic fast-space footprint: one bit per plane per cell."""
        return self.num_cells * self.value_bits

    def get(self, index: int) -> int:
        """Assemble the L-bit integer at ``index`` from its planes."""
        value = 0
        for bit in range(self.value_bits):
            value |= int(self._planes[bit, index]) << bit
        return value

    def xor(self, index: int, delta: int) -> None:
        """XOR ``delta`` into the cell at ``index``, plane by plane."""
        for bit in range(self.value_bits):
            if (delta >> bit) & 1:
                self._planes[bit, index] ^= 1

    def xor_many(self, indices: np.ndarray, delta: int) -> None:
        """XOR ``delta`` into every cell in ``indices`` (component flip)."""
        for bit in range(self.value_bits):
            if (delta >> bit) & 1:
                self._planes[bit, indices] ^= 1

    def xor_pair_lookup(self, other: "BitPlaneStore", u: int, v: int) -> int:
        """``self[u] XOR other[v]`` assembled plane by plane (L probes)."""
        value = 0
        for bit in range(self.value_bits):
            value |= int(self._planes[bit, u] ^ other._planes[bit, v]) << bit
        return value

    def xor_pair_lookup_batch(
        self, other: "BitPlaneStore", us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`xor_pair_lookup`: one pass per bit-plane."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        result = np.zeros(len(us), dtype=np.uint64)
        for bit in range(self.value_bits):
            plane = self._planes[bit, us] ^ other._planes[bit, vs]
            result |= plane.astype(np.uint64) << np.uint64(bit)
        return result

    def clear(self) -> None:
        """Zero every plane (reconstruction)."""
        self._planes.fill(0)
