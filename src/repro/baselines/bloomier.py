"""Bloomier filter [8]: the static value-only baseline.

The most space-efficient VO table (1.23·L·(n+100) bits — the +100 slack is
the original paper's recommendation so construction succeeds at small n,
which is also why Bloomier looks good at small n in the paper's Fig 4).
Construction solves the XOR equation system in one linear-time greedy pass
(peeling): repeatedly find a cell touched by exactly one remaining key,
stack that key, remove it, and finally assign cells in reverse stack order.

Updates are the weak point the paper targets: adding a key changes the
equation system's topology, and the only general remedy is a full O(n)
rebuild. Changing the value of an *existing* key keeps the topology, so the
same peeling order is replayed with the current seed (still O(n), never a
new failure). Deletion is slow-space-only, like every VO table.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import DuplicateKey, KeyNotFound, ReconstructionFailed
from repro.core.stats import TableStats
from repro.core.value_table import ValueTable
from repro.hashing import HashFamily, key_to_u64
from repro.table import Key, ValueOnlyTable

Cell = Tuple[int, int]


class Bloomier(ValueOnlyTable):
    """Static three-hash VO table built by peeling.

    Parameters
    ----------
    space_factor, slack:
        The table is sized ``space_factor · (n + slack)`` cells at each
        (re)construction — defaults 1.23 and 100 per the paper (§VI-A3).
    """

    name = "bloomier"

    def __init__(
        self,
        capacity: int = 0,
        value_bits: int = 8,
        seed: int = 1,
        space_factor: float = 1.23,
        slack: int = 100,
        num_arrays: int = 3,
        max_construct_attempts: int = 100,
    ):
        if value_bits < 1:
            raise ValueError("value_bits must be >= 1")
        self._value_bits = value_bits
        self._value_mask = (1 << value_bits) - 1
        self.space_factor = space_factor
        self.slack = slack
        self.num_arrays = num_arrays
        self.max_construct_attempts = max_construct_attempts
        self._seed = seed
        self._values: Dict[int, int] = {}
        self._stats = TableStats()
        self.construction_passes = 0
        self._table: Optional[ValueTable] = None
        self._hashes: Optional[HashFamily] = None
        self._build(resize=True)

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        return self._table.space_bits

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def num_cells(self) -> int:
        """m: current number of value-table cells."""
        return self._table.num_cells

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Key) -> bool:
        return key_to_u64(key) in self._values

    def lookup(self, key: Key) -> int:
        handle = key_to_u64(key)
        return self._table.xor_sum(self._cells_for(handle))

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        index_arrays = self._hashes.indices_batch(np.asarray(keys, dtype=np.uint64))
        return self._table.lookup_batch(index_arrays)

    def insert(self, key: Key, value: int) -> None:
        """Add a pair — O(n): topology changed, so the table is rebuilt."""
        handle = key_to_u64(key)
        if handle in self._values:
            raise DuplicateKey(f"key {key!r} already inserted")
        self._check_value(value)
        self._values[handle] = value
        try:
            self._build(resize=True)
        except ReconstructionFailed:
            del self._values[handle]
            raise
        self._stats.updates += 1

    def update(self, key: Key, value: int) -> None:
        """Change an existing key's value — O(n) reassignment, same seed."""
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._check_value(value)
        self._values[handle] = value
        # Topology (key set, seed, size) is unchanged, so the peel that
        # succeeded before succeeds again; only values are reassigned.
        self._build(resize=False)
        self._stats.updates += 1

    def delete(self, key: Key) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        del self._values[handle]

    def insert_many(self, pairs) -> None:
        """Bulk insert with one rebuild at the end (static construction)."""
        added = []
        for key, value in pairs:
            handle = key_to_u64(key)
            if handle in self._values:
                raise DuplicateKey(f"key {key!r} already inserted")
            self._check_value(value)
            self._values[handle] = value
            added.append(handle)
        try:
            self._build(resize=True)
        except ReconstructionFailed:
            for handle in added:
                del self._values[handle]
            raise
        self._stats.updates += len(added)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self._value_bits}-bit values"
            )

    def _cells_for(self, handle: int) -> Tuple[Cell, ...]:
        return tuple(enumerate(self._hashes.indices(handle)))

    def _target_width(self) -> int:
        cells = math.ceil(self.space_factor * (len(self._values) + self.slack))
        return max(1, math.ceil(cells / self.num_arrays))

    def _build(self, resize: bool) -> None:
        """(Re)construct the value table for the current pair set.

        ``resize=False`` keeps the current size and seed (used by value
        updates, where the existing peel is known to succeed).
        """
        attempts = self.max_construct_attempts if resize else 1
        for attempt in range(attempts):
            width = self._target_width() if resize else self._hashes[0].width
            if attempt > 0:
                self._seed += 1
                self._stats.update_failures += 1
                self._stats.reconstructions += 1
            started = time.perf_counter()
            try:
                self._hashes = HashFamily(
                    self._seed, [width] * self.num_arrays
                )
                self.construction_passes += 1
                order = self._peel()
                if order is not None:
                    self._assign(order, width)
                    return
            finally:
                # Only *retry* passes are failure-induced reconstruction
                # time; the first pass is the normal O(n) update cost.
                if attempt > 0:
                    self._stats.reconstruct_seconds += (
                        time.perf_counter() - started
                    )
        raise ReconstructionFailed(
            f"peeling failed for {self.max_construct_attempts} seeds"
        )

    def _peel(self) -> Optional[List[Tuple[int, Cell]]]:
        """Greedy peel: an order in which each key has a private cell.

        Returns ``[(key, its singleton cell), ...]`` in peel order, or None
        if peeling stalls (construction failure).
        """
        width = self._hashes[0].width
        counts = np.zeros((self.num_arrays, width), dtype=np.int64)
        cell_members: Dict[Cell, set] = {}
        key_cells: Dict[int, Tuple[Cell, ...]] = {}
        for handle in self._values:
            cells = self._cells_for(handle)
            key_cells[handle] = cells
            for cell in cells:
                counts[cell] += 1
                cell_members.setdefault(cell, set()).add(handle)

        stack: List[Tuple[int, Cell]] = []
        queue = [cell for cell, members in cell_members.items() if len(members) == 1]
        peeled = set()
        while queue:
            cell = queue.pop()
            members = cell_members.get(cell)
            if not members or len(members) != 1:
                continue
            (handle,) = members
            if handle in peeled:
                continue
            peeled.add(handle)
            stack.append((handle, cell))
            for other in key_cells[handle]:
                cell_members[other].discard(handle)
                counts[other] -= 1
                if len(cell_members[other]) == 1:
                    queue.append(other)
        if len(peeled) != len(self._values):
            return None
        return stack

    def _assign(self, order: List[Tuple[int, Cell]], width: int) -> None:
        """Assign cells in reverse peel order so every equation holds."""
        self._table = ValueTable(width, self._value_bits, self.num_arrays)
        for handle, own_cell in reversed(order):
            cells = self._cells_for(handle)
            others = [c for c in cells if c != own_cell]
            self._table.set(own_cell, self._values[handle] ^ self._table.xor_sum(others))

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every live key's equation holds."""
        for handle, value in self._values.items():
            actual = self._table.xor_sum(self._cells_for(handle))
            assert actual == value, (
                f"equation broken for key {handle}: table says {actual}, "
                f"recorded value is {value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bloomier(n={len(self)}, m={self.num_cells}, L={self._value_bits})"
        )
