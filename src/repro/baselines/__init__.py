"""Baseline value-only tables the paper compares against (§VI-A).

- :class:`~repro.baselines.bloomier.Bloomier` — the static solution [8]:
  best space (1.23·L·(n+100) bits) but O(n) updates via rebuild.
- :class:`~repro.baselines.othello.Othello` — dynamic two-hash bipartite
  XOR forest [9]: O(1) amortised updates, 2.33·L·n bits, constant
  update-failure probability.
- :class:`~repro.baselines.coloring.ColoringEmbedder` — dynamic two-hash
  scheme [10] at 2.2·L·n bits (see DESIGN.md §5 for the modelled core).
- :class:`~repro.baselines.ludo.Ludo` — bucketised cuckoo slots plus an
  internal locator [21]: (3.76 + 1.05·L)·n bits, with the paper's proposed
  Othello → VisionEmbedder locator swap available as an option.
"""

from repro.baselines.bloomier import Bloomier
from repro.baselines.othello import Othello
from repro.baselines.coloring import ColoringEmbedder
from repro.baselines.ludo import Ludo
from repro.baselines.keystore import CuckooKeyValueTable

__all__ = ["Bloomier", "Othello", "ColoringEmbedder", "Ludo",
           "CuckooKeyValueTable"]
