"""Coloring Embedder [10]: the second dynamic two-hash baseline.

The Coloring Embedder maps each key to two cells of a single table and
derives the value from the pair of cell "colors"; updates propagate through
connected components of the two-choice graph, and — like every two-hash
scheme — an unsolvable configuration (most simply, two cells that collide
outright) occurs with constant probability per full insertion, forcing a
full rebuild.

Per DESIGN.md §5, we model the scheme's core as an XOR constraint
``A[u] XOR A[v] == value`` on a *non-bipartite* two-choice graph over one
array of 2.2·n cells (the paper's quoted 2.2·L bits per key), with
component-flip updates. This preserves the three axes the paper measures
Color on — 2.2·L space, O(1) amortised updates, constant failure
probability (including the self-loop ``u == v`` collision case, which has
no analogue in bipartite Othello) — without reproducing Color's internal
colour-compression machinery. Values are stored as bit-planes, so lookup
cost grows with L exactly as Fig 8(b) reports for Color.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.baselines.bitplanes import BitPlaneStore
from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    UpdateFailure,
)
from repro.core.stats import TableStats
from repro.hashing import HashFamily, key_to_u64
from repro.table import Key, ValueOnlyTable


class ColoringEmbedder(ValueOnlyTable):
    """Two-hash, single-array value-only table at 2.2·L bits per key."""

    name = "color"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        seed: int = 1,
        space_factor: float = 2.2,
        max_reconstruct_attempts: int = 50,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._value_bits = value_bits
        self._value_mask = (1 << value_bits) - 1
        self._m = max(2, math.ceil(capacity * space_factor))
        self._seed = seed
        self._hashes = HashFamily(seed, [self._m, self._m])
        self._cells = BitPlaneStore(self._m, value_bits)
        # Slow-space assistant: adjacency of the two-choice graph.
        self._adj: List[Set[int]] = [set() for _ in range(self._m)]
        self._values: Dict[int, int] = {}
        self._endpoints: Dict[int, Tuple[int, int]] = {}
        self.max_reconstruct_attempts = max_reconstruct_attempts
        self._stats = TableStats()

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        return self._m * self._value_bits

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def seed(self) -> int:
        return self._seed

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Key) -> bool:
        return key_to_u64(key) in self._values

    def lookup(self, key: Key) -> int:
        handle = key_to_u64(key)
        u = self._hashes[0].index(handle)
        v = self._hashes[1].index(handle)
        return self._cells.xor_pair_lookup(self._cells, u, v)

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        us = self._hashes[0].index_batch(keys)
        vs = self._hashes[1].index_batch(keys)
        return self._cells.xor_pair_lookup_batch(self._cells, us, vs)

    def insert(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if handle in self._values:
            raise DuplicateKey(f"key {key!r} already inserted")
        self._check_value(value)
        self._values[handle] = value
        self._endpoints[handle] = (
            self._hashes[0].index(handle),
            self._hashes[1].index(handle),
        )
        try:
            self._link(handle)
            self._stats.updates += 1
        except UpdateFailure:
            self._stats.update_failures += 1
            self._reconstruct()

    def update(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._check_value(value)
        if self._values[handle] == value:
            return
        self._values[handle] = value
        u, v = self._endpoints[handle]
        self._adj[u].discard(handle)
        self._adj[v].discard(handle)
        try:
            self._link(handle)
            self._stats.updates += 1
        except UpdateFailure:
            self._stats.update_failures += 1
            self._reconstruct()

    def delete(self, key: Key) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        u, v = self._endpoints.pop(handle)
        self._adj[u].discard(handle)
        self._adj[v].discard(handle)
        del self._values[handle]

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self._value_bits}-bit values"
            )

    def _component_of(self, start: int) -> Set[int]:
        """BFS the set of cells connected to ``start``."""
        nodes = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for edge in self._adj[node]:
                u, v = self._endpoints[edge]
                other = v if node == u else u
                if other not in nodes:
                    nodes.add(other)
                    queue.append(other)
        return nodes

    def _link(self, handle: int) -> None:
        """Attach an edge; raises :class:`UpdateFailure` when unsolvable."""
        u, v = self._endpoints[handle]
        value = self._values[handle]
        if u == v:
            # Both hashes collided on one cell: the equation is
            # A[u] XOR A[u] == value, solvable only for value == 0. This is
            # the collision failure two-hash schemes suffer from.
            if value != 0:
                raise UpdateFailure("two-hash self-collision")
            self._adj[u].add(handle)
            return
        current = self._cells.xor_pair_lookup(self._cells, u, v)
        delta = current ^ value
        if delta:
            component = self._component_of(u)
            if v in component:
                raise UpdateFailure("inconsistent cycle in two-hash graph")
            self._cells.xor_many(np.fromiter(component, dtype=np.int64), delta)
        self._adj[u].add(handle)
        self._adj[v].add(handle)

    def _reconstruct(self) -> None:
        """Reseed the hash functions and rebuild everything."""
        pairs = list(self._values.items())
        started = time.perf_counter()
        try:
            for _ in range(self.max_reconstruct_attempts):
                self._stats.reconstructions += 1
                self._seed += 1
                self._hashes = self._hashes.reseeded(self._seed)
                self._cells.clear()
                for bucket in self._adj:
                    bucket.clear()
                if self._try_rebuild(pairs):
                    return
            raise ReconstructionFailed(
                f"no working seed within {self.max_reconstruct_attempts} attempts"
            )
        finally:
            self._stats.reconstruct_seconds += time.perf_counter() - started

    def _try_rebuild(self, pairs) -> bool:
        for handle, _value in pairs:
            self._endpoints[handle] = (
                self._hashes[0].index(handle),
                self._hashes[1].index(handle),
            )
            try:
                self._link(handle)
            except UpdateFailure:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every live key's equation holds."""
        for handle, value in self._values.items():
            u, v = self._endpoints[handle]
            actual = self._cells.xor_pair_lookup(self._cells, u, v)
            assert actual == value, (
                f"equation broken for key {handle}: table says {actual}, "
                f"recorded value is {value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColoringEmbedder(n={len(self)}, m={self._m}, L={self._value_bits})"
