"""Ludo hashing [21]: the key-value baseline at (3.76 + 1.05·L)·n bits.

Ludo stores values in 4-slot cuckoo buckets. A key has two candidate
buckets; a 1-bit internal *locator* (an Othello over the key set) remembers
which of the two actually holds it, and a 5-bit per-bucket seed defines a
collision-free mapping from the bucket's resident keys to its 4 slots, so a
lookup is: locator bit → bucket → seeded slot hash → value. Fast space is
the slots (1.05·L·n), the seeds (1.32·n) and the locator (2.33·n) — the
paper's (3.76 + 1.05·L)·n.

The paper points out Ludo inherits the locator's failure behaviour and
proposes replacing the internal Othello with VisionEmbedder, cutting the
constant to ~3.1 + 1.05·L and the failure probability to O(1/n). That swap
is implemented here via ``locator="vision"`` and exercised by the ablation
benchmark.
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    SpaceExhausted,
    UpdateFailure,
)
from repro.core.stats import TableStats
from repro.hashing import IndexHasher, key_to_u64, murmur3_32_u64
from repro.table import Key, ValueOnlyTable

SLOTS_PER_BUCKET = 4
SEED_BITS = 5
NUM_SEEDS = 1 << SEED_BITS


def _make_locator(kind: str, capacity: int, seed: int):
    """Build the 1-bit bucket locator: classic Othello or VisionEmbedder."""
    if kind == "othello":
        from repro.baselines.othello import Othello

        return Othello(capacity, value_bits=1, seed=seed)
    if kind == "vision":
        from repro.core.embedder import VisionEmbedder

        # Default config: the locator self-heals (reseeds itself) on its
        # own rare failures and counts them in its stats, mirroring how the
        # Othello locator behaves.
        return VisionEmbedder(capacity, value_bits=1, seed=seed)
    raise ValueError(f"unknown locator kind {kind!r}")


class Ludo(ValueOnlyTable):
    """Bucketised cuckoo value store with a 1-bit locator.

    Parameters
    ----------
    bucket_load:
        Target slot occupancy; buckets are provisioned so that ``capacity``
        keys fill ``bucket_load`` of all slots (paper-consistent 0.95).
    locator:
        ``"othello"`` (original Ludo) or ``"vision"`` (the paper's proposed
        improvement).
    """

    name = "ludo"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        seed: int = 1,
        bucket_load: float = 0.95,
        locator: str = "othello",
        max_kicks: int = 500,
        max_reconstruct_attempts: int = 50,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._value_bits = value_bits
        self._value_mask = (1 << value_bits) - 1
        self.bucket_load = bucket_load
        self.locator_kind = locator
        self.max_kicks = max_kicks
        self.max_reconstruct_attempts = max_reconstruct_attempts
        self._num_buckets = max(
            2, math.ceil(capacity / (SLOTS_PER_BUCKET * bucket_load))
        )
        self._seed = seed
        self._stats = TableStats()
        self._rng = random.Random(seed ^ 0x5F0E2D3C)
        self._retired_locator_reconstructions = 0
        self._init_structures()

    def _init_structures(self) -> None:
        # Keep the failure history of any locator we are about to replace.
        old_locator = getattr(self, "_locator", None)
        if old_locator is not None:
            self._retired_locator_reconstructions += (
                old_locator.stats.reconstructions
            )
        self._bucket_hashes = (
            IndexHasher(self._seed * 2 + 11, self._num_buckets),
            IndexHasher(self._seed * 2 + 12, self._num_buckets),
        )
        self._slot_seed_salt = (self._seed * 0x9E3779B1) & 0xFFFFFFFF
        self._slots = np.zeros(
            (self._num_buckets, SLOTS_PER_BUCKET), dtype=np.uint64
        )
        self._bucket_seeds = np.zeros(self._num_buckets, dtype=np.uint8)
        # Slow-space bookkeeping.
        self._members: List[Set[int]] = [set() for _ in range(self._num_buckets)]
        self._values: Dict[int, int] = {}
        self._home: Dict[int, int] = {}
        self._slot_cache: Dict[int, np.ndarray] = {}
        self._locator = _make_locator(self.locator_kind, self.capacity, self._seed)

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        slots = self._num_buckets * SLOTS_PER_BUCKET * self._value_bits
        seeds = self._num_buckets * SEED_BITS
        return slots + seeds + self._locator.space_bits

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def failure_events(self) -> int:
        """Own rebuild passes plus every locator rebuild, past and present."""
        return (
            self.stats.reconstructions
            + self._retired_locator_reconstructions
            + self._locator.stats.reconstructions
        )

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Key) -> bool:
        return key_to_u64(key) in self._values

    def lookup(self, key: Key) -> int:
        handle = key_to_u64(key)
        bit = self._locator.lookup(handle) & 1
        bucket = self._bucket_hashes[bit].index(handle)
        slot = self._slot_of(handle, int(self._bucket_seeds[bucket]))
        return int(self._slots[bucket, slot])

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        bits = (self._locator.lookup_batch(keys) & np.uint64(1)).astype(bool)
        b0 = self._bucket_hashes[0].index_batch(keys).astype(np.int64)
        b1 = self._bucket_hashes[1].index_batch(keys).astype(np.int64)
        buckets = np.where(bits, b1, b0)
        seeds = self._bucket_seeds[buckets].astype(np.uint64)
        slot_hash = self._slot_hash_batch(keys, seeds)
        return self._slots[buckets, slot_hash]

    def insert(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if handle in self._values:
            raise DuplicateKey(f"key {key!r} already inserted")
        self._check_value(value)
        self._values[handle] = value
        try:
            self._place(handle, 0)
            self._stats.updates += 1
        except (UpdateFailure, SpaceExhausted):
            self._stats.update_failures += 1
            self._reconstruct()

    def update(self, key: Key, value: int) -> None:
        """O(1): rewrite the key's slot in place — no topology change."""
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._check_value(value)
        self._values[handle] = value
        bucket = self._home[handle]
        slot = self._slot_of(handle, int(self._bucket_seeds[bucket]))
        self._slots[bucket, slot] = value
        self._stats.updates += 1

    def delete(self, key: Key) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        bucket = self._home.pop(handle)
        self._members[bucket].discard(handle)
        del self._values[handle]
        self._slot_cache.pop(handle, None)
        if handle in self._locator:
            self._locator.delete(handle)

    # ------------------------------------------------------------------
    # Placement machinery
    # ------------------------------------------------------------------

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self._value_bits}-bit values"
            )

    def _slot_of(self, handle: int, bucket_seed: int) -> int:
        return murmur3_32_u64(
            handle, self._slot_seed_salt + bucket_seed
        ) % SLOTS_PER_BUCKET

    def _slot_hash_batch(self, keys: np.ndarray, seeds: np.ndarray) -> np.ndarray:
        """Per-key slot index under per-key bucket seeds (vectorised).

        Bucket seeds take one of 32 values; hash the batch once per seed
        value actually present and select.
        """
        result = np.zeros(len(keys), dtype=np.int64)
        for seed_value in np.unique(seeds):
            mask = seeds == seed_value
            hasher = IndexHasher(
                self._slot_seed_salt + int(seed_value), SLOTS_PER_BUCKET
            )
            result[mask] = hasher.index_batch(keys[mask]).astype(np.int64)
        return result

    def _slot_table(self, handle: int) -> np.ndarray:
        """The key's slot under each of the 32 possible bucket seeds."""
        cached = self._slot_cache.get(handle)
        if cached is None:
            cached = np.fromiter(
                (self._slot_of(handle, s) for s in range(NUM_SEEDS)),
                dtype=np.uint8,
                count=NUM_SEEDS,
            )
            self._slot_cache[handle] = cached
        return cached

    def _find_bucket_seed(self, members: List[int]) -> Optional[int]:
        """A seed value mapping ``members`` to pairwise-distinct slots."""
        if not members:
            return 0
        tables = np.stack([self._slot_table(m) for m in members])
        for seed_value in range(NUM_SEEDS):
            column = tables[:, seed_value]
            if len(np.unique(column)) == len(members):
                return seed_value
        return None

    def _candidates(self, handle: int) -> Tuple[int, int]:
        return (
            self._bucket_hashes[0].index(handle),
            self._bucket_hashes[1].index(handle),
        )

    def _try_settle(self, bucket: int, handle: int) -> bool:
        """Try to host ``handle`` in ``bucket``: reseed + rewrite its slots."""
        members = sorted(self._members[bucket] | {handle})
        if len(members) > SLOTS_PER_BUCKET:
            return False
        seed_value = self._find_bucket_seed(members)
        if seed_value is None:
            return False
        self._members[bucket].add(handle)
        self._home[handle] = bucket
        self._bucket_seeds[bucket] = seed_value
        for member in members:
            slot = int(self._slot_table(member)[seed_value])
            self._slots[bucket, slot] = self._values[member]
        return True

    def _set_locator_bit(self, handle: int, bucket: int) -> None:
        b0, _b1 = self._candidates(handle)
        bit = 0 if bucket == b0 else 1
        self._locator.put(handle, bit)

    def _place(self, handle: int, depth: int) -> None:
        """Cuckoo placement with bounded kicks; raises on exhaustion."""
        if depth > self.max_kicks:
            raise UpdateFailure("cuckoo kick budget exhausted", steps=depth)
        b0, b1 = self._candidates(handle)
        order = sorted({b0, b1}, key=lambda b: len(self._members[b]))
        for bucket in order:
            if self._try_settle(bucket, handle):
                self._set_locator_bit(handle, bucket)
                return
        # Both candidates refuse (full, or no collision-free seed): evict a
        # resident of one of them and retry it in its alternate bucket.
        bucket = self._rng.choice(order)
        victims = list(self._members[bucket])
        self._rng.shuffle(victims)
        for victim in victims:
            self._members[bucket].discard(victim)
            del self._home[victim]
            if self._try_settle(bucket, handle):
                self._set_locator_bit(handle, bucket)
                self._place(victim, depth + 1)
                return
            # Could not settle even without this victim; put it back.
            self._members[bucket].add(victim)
            self._home[victim] = bucket
        raise UpdateFailure("no viable bucket seed", steps=depth)

    def _reconstruct(self) -> None:
        """Reseed everything (buckets, slot salts, locator) and re-insert."""
        pairs = list(self._values.items())
        started = time.perf_counter()
        try:
            for _ in range(self.max_reconstruct_attempts):
                self._stats.reconstructions += 1
                self._seed += 1
                self._init_structures()
                # _init_structures resets the pair map along with the rest
                # of the slow space; restore it before re-placing.
                self._values = dict(pairs)
                if self._try_rebuild(pairs):
                    return
            raise ReconstructionFailed(
                f"no working seed within {self.max_reconstruct_attempts} attempts"
            )
        finally:
            self._stats.reconstruct_seconds += time.perf_counter() - started

    def _try_rebuild(self, pairs) -> bool:
        for handle, _value in pairs:
            try:
                self._place(handle, 0)
            except (UpdateFailure, SpaceExhausted):
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert lookup answers and bookkeeping agree for all live keys."""
        for handle, value in self._values.items():
            bucket = self._home[handle]
            assert handle in self._members[bucket]
            assert bucket in self._candidates(handle)
            actual = self.lookup(handle)
            assert actual == value, (
                f"lookup broken for key {handle}: got {actual}, want {value}"
            )
        for bucket, members in enumerate(self._members):
            assert len(members) <= SLOTS_PER_BUCKET
            slots = {
                int(self._slot_table(m)[int(self._bucket_seeds[bucket])])
                for m in members
            }
            assert len(slots) == len(members), f"slot collision in bucket {bucket}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ludo(n={len(self)}, buckets={self._num_buckets}, "
            f"L={self._value_bits}, locator={self.locator_kind!r})"
        )
