"""Key-stored baseline: bucketised cuckoo hashing (§I, §VII contrast).

The paper's §I splits the field into key-stored solutions and value-only
tables, and its related work (§VII) notes the key-stored side's defining
advantage: it can answer "not present" for alien keys, at the price of
storing the key (or a fingerprint) alongside every value. This module
implements that contrast class so the repository can *measure* the trade
the paper argues about:

- ``mode="full"`` stores the complete key — exact membership, biggest
  space.
- ``mode="fingerprint"`` stores an f-bit hash of the key — membership
  with a 2^-f-ish false-positive rate, space between the two worlds.

The table is a textbook 2-choice, 4-slot-bucket cuckoo hash with BFS-free
random-kick insertion, the same family of machinery Ludo builds on. It
deliberately does *not* implement :class:`~repro.table.ValueOnlyTable` —
its lookup returns ``None`` for absent keys, which is exactly the
semantic VO tables give up.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
)
from repro.core.stats import TableStats
from repro.hashing import IndexHasher, key_to_u64, murmur3_32_u64
from repro.table import Key

SLOTS_PER_BUCKET = 4


@dataclass
class _Entry:
    """One occupied slot: the stored tag (key or fingerprint) + value."""

    key: int        # full key handle (always kept in slow space)
    tag: int        # what fast space stores: key or fingerprint
    value: int


class CuckooKeyValueTable:
    """Key-stored 2-choice cuckoo table with 4-slot buckets.

    Parameters
    ----------
    key_bits:
        Fast-space bits billed per stored key in ``mode="full"`` (the
        keys' native width, e.g. 48 for MAC addresses).
    fingerprint_bits:
        Tag width in ``mode="fingerprint"``.
    """

    name = "cuckoo-kv"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        key_bits: int = 64,
        mode: str = "full",
        fingerprint_bits: int = 12,
        seed: int = 1,
        bucket_load: float = 0.95,
        max_kicks: int = 500,
        max_reconstruct_attempts: int = 50,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if mode not in ("full", "fingerprint"):
            raise ValueError("mode must be 'full' or 'fingerprint'")
        if not 1 <= value_bits <= 64:
            raise ValueError("value_bits must be in [1, 64]")
        self.capacity = capacity
        self.value_bits = value_bits
        self.key_bits = key_bits
        self.mode = mode
        self.fingerprint_bits = fingerprint_bits
        self.bucket_load = bucket_load
        self.max_kicks = max_kicks
        self.max_reconstruct_attempts = max_reconstruct_attempts
        self._value_mask = (1 << value_bits) - 1
        self._num_buckets = max(
            2, math.ceil(capacity / (SLOTS_PER_BUCKET * bucket_load))
        )
        self._seed = seed
        self._rng = random.Random(seed ^ 0x6B657973)
        self._stats = TableStats()
        self._init_structures()

    def _init_structures(self) -> None:
        self._hashes = (
            IndexHasher(self._seed * 3 + 5, self._num_buckets),
            IndexHasher(self._seed * 3 + 6, self._num_buckets),
        )
        self._fp_seed = (self._seed * 0x9E3779B1 + 0x7F) & 0xFFFFFFFF
        self._buckets: List[List[Optional[_Entry]]] = [
            [None] * SLOTS_PER_BUCKET for _ in range(self._num_buckets)
        ]
        self._count = 0

    # ------------------------------------------------------------------
    # Space accounting (the point of this class)
    # ------------------------------------------------------------------

    @property
    def tag_bits(self) -> int:
        """Fast-space bits per slot spent on identifying the key."""
        return self.key_bits if self.mode == "full" else self.fingerprint_bits

    @property
    def space_bits(self) -> int:
        """Fast space: every slot holds a tag + a value (+1 valid bit)."""
        per_slot = self.tag_bits + self.value_bits + 1
        return self._num_buckets * SLOTS_PER_BUCKET * per_slot

    @property
    def bits_per_key(self) -> float:
        return self.space_bits / self._count if self._count else float("inf")

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def false_positive_rate(self) -> float:
        """Chance an alien key matches some resident tag (fingerprint
        mode; zero when full keys are stored)."""
        if self.mode == "full":
            return 0.0
        # Two candidate buckets x 4 slots, each matching w.p. 2^-f.
        return min(1.0, 2 * SLOTS_PER_BUCKET * 2.0 ** -self.fingerprint_bits)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Key) -> bool:
        return self._find(key_to_u64(key)) is not None

    def _tag_of(self, handle: int) -> int:
        if self.mode == "full":
            return handle
        tag = murmur3_32_u64(handle, self._fp_seed)
        return tag & ((1 << self.fingerprint_bits) - 1)

    def _candidates(self, handle: int) -> Tuple[int, int]:
        return (self._hashes[0].index(handle), self._hashes[1].index(handle))

    def _find(self, handle: int) -> Optional[Tuple[int, int]]:
        for bucket in self._candidates(handle):
            for slot, entry in enumerate(self._buckets[bucket]):
                if entry is not None and entry.key == handle:
                    return bucket, slot
        return None

    def insert(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if self._find(handle) is not None:
            raise DuplicateKey(f"key {key!r} already inserted")
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self.value_bits}-bit values"
            )
        entry = _Entry(key=handle, tag=self._tag_of(handle), value=value)
        homeless = self._place(entry)
        if homeless is None:
            self._count += 1
            self._stats.updates += 1
            return
        # Kick chain exhausted: `homeless` is the one displaced entry with
        # no slot (the new entry itself, or a resident it bumped out).
        self._stats.update_failures += 1
        self._reconstruct(extra=homeless)

    def _place(self, entry: _Entry) -> Optional[_Entry]:
        """Cuckoo placement. Returns None on success, or the entry left
        without a slot when the kick budget runs out."""
        current = entry
        for _kick in range(self.max_kicks):
            b0, b1 = self._candidates(current.key)
            for bucket in sorted(
                (b0, b1),
                key=lambda b: sum(e is not None for e in self._buckets[b]),
            ):
                slots = self._buckets[bucket]
                for slot in range(SLOTS_PER_BUCKET):
                    if slots[slot] is None:
                        slots[slot] = current
                        return None
            # Both full: evict a random resident of a random candidate.
            bucket = self._rng.choice((b0, b1))
            slot = self._rng.randrange(SLOTS_PER_BUCKET)
            current, self._buckets[bucket][slot] = (
                self._buckets[bucket][slot], current,
            )
        return current

    def update(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        found = self._find(handle)
        if found is None:
            raise KeyNotFound(f"key {key!r} not inserted")
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self.value_bits}-bit values"
            )
        bucket, slot = found
        self._buckets[bucket][slot].value = value
        self._stats.updates += 1

    def delete(self, key: Key) -> None:
        handle = key_to_u64(key)
        found = self._find(handle)
        if found is None:
            raise KeyNotFound(f"key {key!r} not inserted")
        bucket, slot = found
        self._buckets[bucket][slot] = None
        self._count -= 1

    def lookup(self, key: Key) -> Optional[int]:
        """The value, or None when absent — what VO tables cannot say.

        In fingerprint mode an alien key may collide with a resident tag
        and return that resident's value (rate ``false_positive_rate``).
        """
        handle = key_to_u64(key)
        tag = self._tag_of(handle)
        for bucket in self._candidates(handle):
            for entry in self._buckets[bucket]:
                if entry is not None and entry.tag == tag:
                    if self.mode == "full" and entry.key != handle:
                        continue
                    return entry.value
        return None

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Loop lookup returning ``value + 1`` (0 encodes absent)."""
        out = np.zeros(len(keys), dtype=np.uint64)
        for i, key in enumerate(np.asarray(keys, dtype=np.uint64).tolist()):
            value = self.lookup(key)
            if value is not None:
                out[i] = value + 1
        return out

    def insert_many(self, pairs: Iterable[Tuple[Key, int]]) -> None:
        for key, value in pairs:
            self.insert(key, value)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def _entries(self) -> List[_Entry]:
        return [
            entry
            for bucket in self._buckets
            for entry in bucket
            if entry is not None
        ]

    def _reconstruct(self, extra: Optional[_Entry] = None) -> None:
        entries = self._entries()
        if extra is not None:
            entries.append(extra)
        for _ in range(self.max_reconstruct_attempts):
            self._stats.reconstructions += 1
            self._seed += 1
            self._init_structures()
            placed_all = True
            for entry in entries:
                entry.tag = self._tag_of(entry.key)
                if self._place(entry) is not None:
                    placed_all = False
                    break
            if placed_all:
                self._count = len(entries)
                return
        raise ReconstructionFailed(
            f"no working seed within {self.max_reconstruct_attempts} attempts"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Every entry sits in one of its candidate buckets, tags agree."""
        seen = 0
        for bucket_index, bucket in enumerate(self._buckets):
            for entry in bucket:
                if entry is None:
                    continue
                seen += 1
                assert bucket_index in self._candidates(entry.key)
                assert entry.tag == self._tag_of(entry.key)
        assert seen == self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooKeyValueTable(n={self._count}, "
            f"buckets={self._num_buckets}, mode={self.mode!r})"
        )
