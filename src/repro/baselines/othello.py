"""Othello [9]: the dynamic two-hash value-only table.

Two arrays A (1.33·n cells) and B (1.0·n cells) hold L-bit values; each key
is an edge ``(h_a(k), h_b(k))`` of a bipartite graph and the invariant is
``A[u] XOR B[v] == value``. Inserting an edge that joins two components is
resolved by XOR-flipping every node of one component with the mismatch
delta, which preserves every internal edge's constraint (both endpoints
flip) while fixing the new one. Inserting an edge *inside* a component
whose implied value disagrees is unsolvable — the update failure the paper
attributes to two-hash schemes (birthday-paradox constant probability) —
and forces a full reseed-and-rebuild.

Values are stored as bit-planes, matching the original implementation and
hence the paper's observation (Fig 8b) that Othello's lookup cost grows
with L.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.baselines.bitplanes import BitPlaneStore
from repro.core.errors import (
    DuplicateKey,
    KeyNotFound,
    ReconstructionFailed,
    UpdateFailure,
)
from repro.core.stats import TableStats
from repro.hashing import HashFamily, key_to_u64
from repro.table import Key, ValueOnlyTable


class Othello(ValueOnlyTable):
    """Dynamic two-hash bipartite XOR table.

    Parameters
    ----------
    capacity:
        Expected maximum number of keys; arrays are sized
        ``ma_factor · capacity`` and ``mb_factor · capacity`` (defaults
        1.33 and 1.0, the original paper's sizing — 2.33·L bits per key
        total, as quoted in the paper's Table I).
    """

    name = "othello"

    def __init__(
        self,
        capacity: int,
        value_bits: int,
        seed: int = 1,
        ma_factor: float = 1.33,
        mb_factor: float = 1.0,
        power_of_two: bool = False,
        max_reconstruct_attempts: int = 50,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._value_bits = value_bits
        self._value_mask = (1 << value_bits) - 1
        self._ma = max(1, math.ceil(capacity * ma_factor))
        self._mb = max(1, math.ceil(capacity * mb_factor))
        if power_of_two:
            # The open-source Othello sizes both arrays as powers of two
            # (cheap masking instead of modulo); this is why its measured
            # space cost cannot drop below the 2.33 the paper reports.
            self._ma = 1 << (self._ma - 1).bit_length()
            self._mb = 1 << (self._mb - 1).bit_length()
        self.power_of_two = power_of_two
        self._seed = seed
        self._hashes = HashFamily(seed, [self._ma, self._mb])
        self._a = BitPlaneStore(self._ma, value_bits)
        self._b = BitPlaneStore(self._mb, value_bits)
        # Slow-space assistant: adjacency of the bipartite graph.
        self._adj_a: List[Set[int]] = [set() for _ in range(self._ma)]
        self._adj_b: List[Set[int]] = [set() for _ in range(self._mb)]
        self._values: Dict[int, int] = {}
        self._endpoints: Dict[int, Tuple[int, int]] = {}
        self.max_reconstruct_attempts = max_reconstruct_attempts
        self._stats = TableStats()

    # ------------------------------------------------------------------
    # ValueOnlyTable surface
    # ------------------------------------------------------------------

    @property
    def value_bits(self) -> int:
        return self._value_bits

    @property
    def space_bits(self) -> int:
        return (self._ma + self._mb) * self._value_bits

    @property
    def stats(self) -> TableStats:
        return self._stats

    @property
    def seed(self) -> int:
        return self._seed

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Key) -> bool:
        return key_to_u64(key) in self._values

    def lookup(self, key: Key) -> int:
        handle = key_to_u64(key)
        u = self._hashes[0].index(handle)
        v = self._hashes[1].index(handle)
        return self._a.xor_pair_lookup(self._b, u, v)

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        us = self._hashes[0].index_batch(keys)
        vs = self._hashes[1].index_batch(keys)
        return self._a.xor_pair_lookup_batch(self._b, us, vs)

    def insert(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if handle in self._values:
            raise DuplicateKey(f"key {key!r} already inserted")
        self._check_value(value)
        self._values[handle] = value
        self._endpoints[handle] = (
            self._hashes[0].index(handle),
            self._hashes[1].index(handle),
        )
        try:
            self._link(handle)
            self._stats.updates += 1
        except UpdateFailure:
            self._stats.update_failures += 1
            self._reconstruct()

    def update(self, key: Key, value: int) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        self._check_value(value)
        old_value = self._values[handle]
        if old_value == value:
            return
        self._values[handle] = value
        # Temporarily remove the edge, then re-link it with the new value.
        u, v = self._endpoints[handle]
        self._adj_a[u].discard(handle)
        self._adj_b[v].discard(handle)
        try:
            self._link(handle)
            self._stats.updates += 1
        except UpdateFailure:
            self._stats.update_failures += 1
            self._reconstruct()

    def delete(self, key: Key) -> None:
        handle = key_to_u64(key)
        if handle not in self._values:
            raise KeyNotFound(f"key {key!r} not inserted")
        u, v = self._endpoints.pop(handle)
        self._adj_a[u].discard(handle)
        self._adj_b[v].discard(handle)
        del self._values[handle]

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------

    def _check_value(self, value: int) -> None:
        if not 0 <= value <= self._value_mask:
            raise ValueError(
                f"value {value} out of range for {self._value_bits}-bit values"
            )

    def _component_of_a(self, start_u: int) -> Tuple[Set[int], Set[int]]:
        """BFS the component containing A-node ``start_u``.

        Returns the sets of A-nodes and B-nodes reached.
        """
        a_nodes = {start_u}
        b_nodes: Set[int] = set()
        queue = deque([("a", start_u)])
        while queue:
            side, node = queue.popleft()
            edges = self._adj_a[node] if side == "a" else self._adj_b[node]
            for edge in edges:
                u, v = self._endpoints[edge]
                if side == "a":
                    if v not in b_nodes:
                        b_nodes.add(v)
                        queue.append(("b", v))
                else:
                    if u not in a_nodes:
                        a_nodes.add(u)
                        queue.append(("a", u))
        return a_nodes, b_nodes

    def _link(self, handle: int) -> None:
        """Attach an edge whose value is already recorded in ``_values``.

        Raises :class:`UpdateFailure` on an inconsistent cycle.
        """
        u, v = self._endpoints[handle]
        value = self._values[handle]
        current = self._a.xor_pair_lookup(self._b, u, v)
        delta = current ^ value
        if delta:
            a_nodes, b_nodes = self._component_of_a(u)
            if v in b_nodes:
                # u and v already connected: the edge closes a cycle whose
                # implied value disagrees with the requested one.
                raise UpdateFailure("inconsistent cycle in two-hash graph")
            # Flip u's whole component so the new edge's equation holds
            # while every internal edge keeps both endpoints flipped.
            self._a.xor_many(np.fromiter(a_nodes, dtype=np.int64), delta)
            if b_nodes:
                self._b.xor_many(np.fromiter(b_nodes, dtype=np.int64), delta)
        self._adj_a[u].add(handle)
        self._adj_b[v].add(handle)

    def _reconstruct(self) -> None:
        """Reseed both hash functions and rebuild the whole structure."""
        pairs = list(self._values.items())
        started = time.perf_counter()
        try:
            for _ in range(self.max_reconstruct_attempts):
                self._stats.reconstructions += 1
                self._seed += 1
                self._hashes = self._hashes.reseeded(self._seed)
                self._a.clear()
                self._b.clear()
                for bucket in self._adj_a:
                    bucket.clear()
                for bucket in self._adj_b:
                    bucket.clear()
                if self._try_rebuild(pairs):
                    return
            raise ReconstructionFailed(
                f"no working seed within {self.max_reconstruct_attempts} attempts"
            )
        finally:
            self._stats.reconstruct_seconds += time.perf_counter() - started

    def _try_rebuild(self, pairs) -> bool:
        for handle, _value in pairs:
            self._endpoints[handle] = (
                self._hashes[0].index(handle),
                self._hashes[1].index(handle),
            )
            try:
                self._link(handle)
            except UpdateFailure:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection used by tests
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert every live key's equation holds."""
        for handle, value in self._values.items():
            u, v = self._endpoints[handle]
            actual = self._a.xor_pair_lookup(self._b, u, v)
            assert actual == value, (
                f"equation broken for key {handle}: table says {actual}, "
                f"recorded value is {value}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Othello(n={len(self)}, ma={self._ma}, mb={self._mb}, "
            f"L={self._value_bits})"
        )
