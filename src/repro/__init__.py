"""repro — a from-scratch reproduction of VisionEmbedder (ICDE 2024).

VisionEmbedder is a *value-only* key-value table: it stores only an
encoding of the values (1.6–1.7·L bits per pair with L-bit values), answers
lookups in constant time with three hashed reads and an XOR, supports
amortised-constant dynamic updates via the paper's "vision update"
lookahead, and fails (needs reconstruction) with probability O(1/n) instead
of the constant probability of prior dynamic schemes.

Public surface:

- :class:`VisionEmbedder` / :class:`ConcurrentVisionEmbedder` — the paper's
  contribution (single-threaded and thread-safe).
- :class:`Bloomier`, :class:`Othello`, :class:`ColoringEmbedder`,
  :class:`Ludo` — the compared value-only baselines, all implementing the
  same :class:`ValueOnlyTable` interface.
- :func:`make_table` — build any of the above by name (the benchmark
  harness's factory).
- :mod:`repro.datasets`, :mod:`repro.analysis`, :mod:`repro.fpga`,
  :mod:`repro.bench` — datasets, the paper's theory, the FPGA case-study
  simulator, and the per-figure experiment drivers.
"""

from repro.core import (
    ConcurrentVisionEmbedder,
    DepthPolicy,
    DuplicateKey,
    EmbedderConfig,
    KeyNotFound,
    ReconstructionFailed,
    ReproError,
    ShardedEmbedder,
    SpaceExhausted,
    UpdateFailure,
    VisionEmbedder,
)
from repro.baselines import (Bloomier, ColoringEmbedder,
                             CuckooKeyValueTable, Ludo, Othello)
from repro.table import ValueOnlyTable
from repro.factory import make_table, TABLE_NAMES

__version__ = "1.0.0"

__all__ = [
    "VisionEmbedder",
    "ConcurrentVisionEmbedder",
    "ShardedEmbedder",
    "EmbedderConfig",
    "DepthPolicy",
    "Bloomier",
    "Othello",
    "ColoringEmbedder",
    "Ludo",
    "CuckooKeyValueTable",
    "ValueOnlyTable",
    "make_table",
    "TABLE_NAMES",
    "ReproError",
    "UpdateFailure",
    "SpaceExhausted",
    "ReconstructionFailed",
    "KeyNotFound",
    "DuplicateKey",
    "__version__",
]
