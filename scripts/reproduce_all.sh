#!/usr/bin/env bash
# Regenerate every paper artifact and the extension experiments, saving
# text and JSON outputs under results/.
#
# Usage: scripts/reproduce_all.sh [SCALE]
#   SCALE   workload multiplier (default 1.0; 0.25 for a quick pass)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"
STAMP="$(date +%Y%m%d-%H%M%S)"
OUTDIR="results"
mkdir -p "$OUTDIR"

echo "== repro: full experiment sweep (scale=$SCALE) =="
python -m repro.bench --scale "$SCALE" \
    --output "$OUTDIR/experiments-$STAMP.txt"
python -m repro.bench --scale "$SCALE" --format json \
    --output "$OUTDIR/experiments-$STAMP.json"

echo
echo "text:  $OUTDIR/experiments-$STAMP.txt"
echo "json:  $OUTDIR/experiments-$STAMP.json"
echo
echo "To check a later run against this one:"
echo "  python -m repro.bench --scale $SCALE --compare $OUTDIR/experiments-$STAMP.json"
