#!/usr/bin/env python
"""Doc-drift gate: check every ``python`` code fence in the Markdown docs.

Two tiers, so reference snippets and runnable walkthroughs are both kept
honest without forcing every fragment to be executable:

1. **Syntax tier** (all files): every ```python fence in ``docs/*.md``,
   ``README.md`` and ``CONTRIBUTING.md`` must at least ``compile()`` —
   catching truncated examples, bad indentation, and Python-2-isms.
2. **Execution tier** (``EXEC_FILES``): fences are executed top to bottom
   in one shared namespace per file, exactly like a reader pasting them
   into a REPL. ``docs/observability.md`` and the README quickstart are
   whole worked examples, so a renamed API breaks this gate immediately.

``examples/quickstart.py`` is additionally run as a subprocess (it is the
first thing a new user executes).

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Files whose python fences must *run*, not merely parse. Fences in one
#: file share a namespace (earlier fences define names for later ones).
EXEC_FILES = ("docs/observability.md", "docs/static_analysis.md",
              "docs/serving.md", "README.md")

FENCE_RE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def markdown_files() -> list:
    files = ["README.md", "CONTRIBUTING.md"]
    docs_dir = os.path.join(ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join("docs", name))
    return files


def python_fences(path: str) -> list:
    with open(os.path.join(ROOT, path)) as handle:
        text = handle.read()
    return [match.group(1) for match in FENCE_RE.finditer(text)]


def check_file(path: str) -> list:
    """Returns a list of problem strings for one Markdown file."""
    problems = []
    fences = python_fences(path)
    namespace: dict = {"__name__": f"docfence:{path}"}
    for index, source in enumerate(fences):
        label = f"{path} fence {index + 1}/{len(fences)}"
        try:
            code = compile(source, label, "exec")
        except SyntaxError as exc:
            problems.append(f"{label}: syntax error: {exc}")
            continue
        if path in EXEC_FILES:
            try:
                exec(code, namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(f"{label}: raised {type(exc).__name__}: {exc}")
    return problems


def check_quickstart() -> list:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", "quickstart.py")],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if result.returncode != 0:
        return [
            "examples/quickstart.py exited "
            f"{result.returncode}:\n{result.stderr.strip()}"
        ]
    return []


def main() -> int:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    problems = []
    checked = 0
    for path in markdown_files():
        fences = python_fences(path)
        checked += len(fences)
        mode = "exec" if path in EXEC_FILES else "syntax"
        print(f"{path}: {len(fences)} python fence(s) [{mode}]")
        problems.extend(check_file(path))
    problems.extend(check_quickstart())
    print(f"checked {checked} fences + examples/quickstart.py")
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print("all docs checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
